#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "storage/checkpoint.h"
#include "storage/cloud_storage.h"
#include "storage/erasure.h"

namespace dsmdb::storage {
namespace {

TEST(CloudStorageTest, AppendAndReadStream) {
  CloudStorage cloud;
  SimClock::Reset();
  Result<uint64_t> len = cloud.Append("wal/a", "rec1");
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, 4u);
  ASSERT_TRUE(cloud.Append("wal/a", "rec2").ok());
  Result<std::string> data = cloud.ReadStream("wal/a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "rec1rec2");
  EXPECT_EQ(cloud.StreamBytes("wal/a"), 8u);
}

TEST(CloudStorageTest, AppendChargesBlockLatency) {
  CloudStorage cloud;
  SimClock::Reset();
  ASSERT_TRUE(cloud.Append("wal/x", "payload").ok());
  EXPECT_GE(SimClock::Now(), cloud.options().block.write_latency_ns);
}

TEST(CloudStorageTest, DeviceQueueSerializesAppends) {
  CloudStorage cloud;
  SimClock::Reset();
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(cloud.Append("wal/q", "x").ok());
  }
  // 4 sequential device ops on one stream: at least 4x the write latency.
  EXPECT_GE(SimClock::Now(), 4 * cloud.options().block.write_latency_ns);
}

TEST(CloudStorageTest, TruncateStream) {
  CloudStorage cloud;
  ASSERT_TRUE(cloud.Append("wal/t", "bytes").ok());
  ASSERT_TRUE(cloud.TruncateStream("wal/t").ok());
  EXPECT_EQ(cloud.StreamBytes("wal/t"), 0u);
  EXPECT_TRUE(cloud.TruncateStream("nope").IsNotFound());
}

TEST(CloudStorageTest, ObjectPutGetDeleteList) {
  CloudStorage cloud;
  ASSERT_TRUE(cloud.PutObject("ckpt/n0/1", "aaa").ok());
  ASSERT_TRUE(cloud.PutObject("ckpt/n0/2", "bbb").ok());
  ASSERT_TRUE(cloud.PutObject("ckpt/n1/1", "ccc").ok());
  Result<std::string> v = cloud.GetObject("ckpt/n0/2");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "bbb");
  EXPECT_EQ(cloud.ListObjects("ckpt/n0/").size(), 2u);
  ASSERT_TRUE(cloud.DeleteObject("ckpt/n0/1").ok());
  EXPECT_TRUE(cloud.GetObject("ckpt/n0/1").status().IsNotFound());
  EXPECT_EQ(cloud.ListObjects("ckpt/").size(), 2u);
}

TEST(CloudStorageTest, ObjectClassIsSlowerThanBlock) {
  CloudStorage cloud;
  SimClock::Reset();
  ASSERT_TRUE(cloud.Append("s", "x").ok());
  const uint64_t block_ns = SimClock::Now();
  SimClock::Reset();
  ASSERT_TRUE(cloud.PutObject("o", "x").ok());
  EXPECT_GT(SimClock::Now(), block_ns);  // S3-like >> EBS-like
}

TEST(CloudStorageTest, ConcurrentAppendsAllLand) {
  CloudStorage cloud;
  ParallelFor(8, [&](size_t) {
    for (int i = 0; i < 50; i++) {
      ASSERT_TRUE(cloud.Append("wal/conc", "ab").ok());
    }
  });
  EXPECT_EQ(cloud.StreamBytes("wal/conc"), 800u);
}

TEST(CheckpointerTest, WriteReadLatest) {
  CloudStorage cloud;
  Checkpointer ckpt(&cloud, "ckpt/node0");
  Result<uint64_t> e1 = ckpt.Write("state-v1");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 1u);
  Result<uint64_t> e2 = ckpt.Write("state-v2");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e2, 2u);
  Result<Checkpointer::Snapshot> snap = ckpt.ReadLatest();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->epoch, 2u);
  EXPECT_EQ(snap->bytes, "state-v2");
}

TEST(CheckpointerTest, GarbageCollectKeepsNewest) {
  CloudStorage cloud;
  Checkpointer ckpt(&cloud, "ckpt/gc");
  for (int i = 0; i < 5; i++) ASSERT_TRUE(ckpt.Write("v").ok());
  ASSERT_TRUE(ckpt.GarbageCollect(2).ok());
  EXPECT_EQ(cloud.ListObjects("ckpt/gc/epoch/").size(), 2u);
  Result<Checkpointer::Snapshot> snap = ckpt.ReadLatest();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->epoch, 5u);
}

TEST(CheckpointerTest, MissingCheckpointIsNotFound) {
  CloudStorage cloud;
  Checkpointer ckpt(&cloud, "ckpt/none");
  EXPECT_TRUE(ckpt.ReadLatest().status().IsNotFound());
}

TEST(XorErasureTest, ParityRoundTrip) {
  const std::string data = "The quick brown fox jumps over the lazy dog!";
  const auto shards = XorErasure::Split(data, 4);
  ASSERT_EQ(shards.size(), 4u);
  Result<std::string> parity = XorErasure::EncodeParity(shards);
  ASSERT_TRUE(parity.ok());

  // Lose shard 2; rebuild from the others + parity.
  std::vector<std::string> surviving = {shards[0], shards[1], shards[3]};
  Result<std::string> rebuilt = XorErasure::Reconstruct(surviving, *parity);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, shards[2]);

  // Reassemble the full original.
  std::vector<std::string> all = {shards[0], shards[1], *rebuilt, shards[3]};
  EXPECT_EQ(XorErasure::Join(all, data.size()), data);
}

TEST(XorErasureTest, EveryShardIsRecoverable) {
  const std::string data(1000, 'z');
  const auto shards = XorErasure::Split(data, 5);
  Result<std::string> parity = XorErasure::EncodeParity(shards);
  ASSERT_TRUE(parity.ok());
  for (size_t lost = 0; lost < shards.size(); lost++) {
    std::vector<std::string> surviving;
    for (size_t i = 0; i < shards.size(); i++) {
      if (i != lost) surviving.push_back(shards[i]);
    }
    Result<std::string> rebuilt =
        XorErasure::Reconstruct(surviving, *parity);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(*rebuilt, shards[lost]);
  }
}

TEST(XorErasureTest, MemoryOverheadIsOneOverK) {
  const std::string data(10'000, 'q');
  const auto shards = XorErasure::Split(data, 4);
  Result<std::string> parity = XorErasure::EncodeParity(shards);
  ASSERT_TRUE(parity.ok());
  size_t total = parity->size();
  for (const auto& s : shards) total += s.size();
  // 1/k overhead vs 2x for mirroring.
  EXPECT_LT(static_cast<double>(total), data.size() * 1.3);
}

TEST(XorErasureTest, RejectsMismatchedShards) {
  EXPECT_TRUE(
      XorErasure::EncodeParity({}).status().IsInvalidArgument());
  EXPECT_TRUE(XorErasure::EncodeParity({"abc", "de"})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace dsmdb::storage
