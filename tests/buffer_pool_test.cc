#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"

namespace dsmdb::buffer {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 16 << 20;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  BufferPoolOptions SmallPool(size_t pages) {
    BufferPoolOptions opts;
    opts.page_size = 4096;
    opts.capacity_bytes = pages * opts.page_size;
    opts.shards = 1;  // deterministic eviction for tests
    opts.charge_policy_overhead = false;
    return opts;
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
};

TEST_F(BufferPoolTest, ReadThroughCachesPage) {
  dsm::GlobalAddress addr = *client_->Alloc(4096, 0);
  const uint64_t v = 0xABCD;
  ASSERT_TRUE(client_->Write(addr, &v, 8).ok());

  BufferPool pool(client_.get(), SmallPool(8));
  uint64_t out = 0;
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());
  EXPECT_EQ(out, 0xABCDu);
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());  // second read: hit
  const BufferPoolStats s = pool.Snapshot();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(pool.ResidentPages(), 1u);
}

TEST_F(BufferPoolTest, HitIsCheaperThanMiss) {
  dsm::GlobalAddress addr = *client_->Alloc(4096, 0);
  BufferPool pool(client_.get(), SmallPool(8));
  uint64_t out;
  SimClock::Reset();
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());
  const uint64_t miss_ns = SimClock::Now();
  SimClock::Reset();
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());
  const uint64_t hit_ns = SimClock::Now();
  EXPECT_LT(hit_ns * 3, miss_ns);  // local << remote
}

TEST_F(BufferPoolTest, WriteThroughIsVisibleRemotely) {
  dsm::GlobalAddress addr = *client_->Alloc(4096, 0);
  BufferPool pool(client_.get(), SmallPool(8));
  const uint64_t v = 777;
  ASSERT_TRUE(pool.Write(addr, &v, 8).ok());
  uint64_t remote = 0;
  ASSERT_TRUE(client_->Read(addr, &remote, 8).ok());  // bypass the cache
  EXPECT_EQ(remote, 777u);
}

TEST_F(BufferPoolTest, WriteUpdatesCachedCopy) {
  dsm::GlobalAddress addr = *client_->Alloc(4096, 0);
  BufferPool pool(client_.get(), SmallPool(8));
  uint64_t out = 0;
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());  // cache the page
  const uint64_t v = 31337;
  ASSERT_TRUE(pool.Write(addr, &v, 8).ok());
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());  // must hit and be fresh
  EXPECT_EQ(out, 31337u);
  EXPECT_EQ(pool.Snapshot().misses, 1u);
}

TEST_F(BufferPoolTest, EvictionKeepsCapacityBound) {
  BufferPool pool(client_.get(), SmallPool(4));
  std::vector<dsm::GlobalAddress> addrs;
  for (int i = 0; i < 16; i++) {
    addrs.push_back(*client_->Alloc(4096, 0));
  }
  char buf[64];
  for (const auto& a : addrs) {
    ASSERT_TRUE(pool.Read(a, buf, sizeof(buf)).ok());
  }
  EXPECT_LE(pool.ResidentPages(), 4u);
  EXPECT_GE(pool.Snapshot().evictions, 12u);
}

TEST_F(BufferPoolTest, WriteBackFlushesDirtyPagesOnEviction) {
  BufferPoolOptions opts = SmallPool(2);
  opts.write_through = false;
  BufferPool pool(client_.get(), opts);
  std::vector<dsm::GlobalAddress> addrs;
  for (int i = 0; i < 6; i++) addrs.push_back(*client_->Alloc(4096, 0));

  // Cache page 0 then dirty it (write-back: remote copy stays stale).
  uint64_t out = 0;
  ASSERT_TRUE(pool.Read(addrs[0], &out, 8).ok());
  const uint64_t v = 99;
  ASSERT_TRUE(pool.Write(addrs[0], &v, 8).ok());
  uint64_t remote = 0;
  ASSERT_TRUE(client_->Read(addrs[0], &remote, 8).ok());
  EXPECT_EQ(remote, 0u);  // not yet written back

  // Force eviction.
  for (int i = 1; i < 6; i++) {
    ASSERT_TRUE(pool.Read(addrs[i], &out, 8).ok());
  }
  ASSERT_TRUE(client_->Read(addrs[0], &remote, 8).ok());
  EXPECT_EQ(remote, 99u);
  EXPECT_GE(pool.Snapshot().writebacks, 1u);
}

// Regression: the dirty write-back must land before the victim's erase
// becomes visible. If the erase went first, a concurrent miss could refill
// the page from home memory with pre-writeback bytes — the reader would
// observe an older value than it already saw, and because the refilled
// frame is clean the lost update would never be repaired.
TEST_F(BufferPoolTest, WriteBackEvictionNeverServesStaleRefill) {
  BufferPoolOptions opts = SmallPool(1);  // every miss evicts
  opts.write_through = false;
  BufferPool pool(client_.get(), opts);
  const dsm::GlobalAddress hot = *client_->Alloc(4096, 0);
  const dsm::GlobalAddress churn = *client_->Alloc(4096, 0);

  constexpr uint64_t kIters = 500;
  std::thread writer([&] {
    uint64_t scratch;
    for (uint64_t i = 1; i <= kIters; i++) {
      // Cache the page, dirty it, then force its eviction.
      EXPECT_TRUE(pool.Read(hot, &scratch, 8).ok());
      EXPECT_TRUE(pool.Write(hot, &i, 8).ok());
      EXPECT_TRUE(pool.Read(churn, &scratch, 8).ok());
    }
  });
  std::thread reader([&] {
    uint64_t last = 0;
    for (uint64_t i = 0; i < kIters; i++) {
      uint64_t v = 0;
      EXPECT_TRUE(pool.Read(hot, &v, 8).ok());
      EXPECT_GE(v, last) << "refill served pre-writeback bytes";
      last = v;
    }
  });
  writer.join();
  reader.join();

  ASSERT_TRUE(pool.FlushAll().ok());
  uint64_t remote = 0;
  ASSERT_TRUE(client_->Read(hot, &remote, 8).ok());
  EXPECT_EQ(remote, kIters);
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPages) {
  BufferPoolOptions opts = SmallPool(4);
  opts.write_through = false;
  BufferPool pool(client_.get(), opts);
  dsm::GlobalAddress addr = *client_->Alloc(4096, 0);
  uint64_t out = 0;
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());
  const uint64_t v = 555;
  ASSERT_TRUE(pool.Write(addr, &v, 8).ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  uint64_t remote = 0;
  ASSERT_TRUE(client_->Read(addr, &remote, 8).ok());
  EXPECT_EQ(remote, 555u);
}

TEST_F(BufferPoolTest, InvalidateDropsPage) {
  dsm::GlobalAddress addr = *client_->Alloc(4096, 0);
  BufferPool pool(client_.get(), SmallPool(8));
  uint64_t out = 0;
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());
  EXPECT_EQ(pool.ResidentPages(), 1u);
  pool.Invalidate(pool.PageBase(addr));
  EXPECT_EQ(pool.ResidentPages(), 0u);
  EXPECT_EQ(pool.Snapshot().invalidations_received, 1u);
  // Next read re-fetches the remote (fresh) value.
  const uint64_t v = 1212;
  ASSERT_TRUE(client_->Write(addr, &v, 8).ok());
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());
  EXPECT_EQ(out, 1212u);
}

TEST_F(BufferPoolTest, ApplyUpdatePatchesCachedBytes) {
  dsm::GlobalAddress addr = *client_->Alloc(4096, 0);
  BufferPool pool(client_.get(), SmallPool(8));
  uint64_t out = 0;
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());
  const uint64_t v = 4141;
  std::string data(reinterpret_cast<const char*>(&v), 8);
  pool.ApplyUpdate(addr, data);
  ASSERT_TRUE(pool.Read(addr, &out, 8).ok());  // hit, updated
  EXPECT_EQ(out, 4141u);
  EXPECT_EQ(pool.Snapshot().updates_received, 1u);
  EXPECT_EQ(pool.Snapshot().misses, 1u);
}

TEST_F(BufferPoolTest, MultiPageReadSpansBoundaries) {
  // Allocate two consecutive pages worth of data on one node.
  dsm::GlobalAddress base = *client_->Alloc(3 * 4096, 0);
  std::vector<char> payload(8192);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<char>(i % 251);
  }
  ASSERT_TRUE(client_->Write(base, payload.data(), payload.size()).ok());
  BufferPool pool(client_.get(), SmallPool(8));
  std::vector<char> out(8192);
  // Start mid-page so the read spans at least two pages.
  ASSERT_TRUE(pool.Read(base.Plus(100), out.data(), 8000).ok());
  EXPECT_EQ(std::memcmp(out.data(), payload.data() + 100, 8000), 0);
}

TEST_F(BufferPoolTest, DropAllEmptiesPool) {
  BufferPool pool(client_.get(), SmallPool(8));
  for (int i = 0; i < 4; i++) {
    dsm::GlobalAddress a = *client_->Alloc(4096, 0);
    uint64_t out;
    ASSERT_TRUE(pool.Read(a, &out, 8).ok());
  }
  EXPECT_EQ(pool.ResidentPages(), 4u);
  pool.DropAll();
  EXPECT_EQ(pool.ResidentPages(), 0u);
}

TEST_F(BufferPoolTest, ConcurrentMixedTraffic) {
  BufferPoolOptions opts;
  opts.page_size = 4096;
  opts.capacity_bytes = 32 * 4096;
  opts.shards = 8;
  opts.charge_policy_overhead = false;
  BufferPool pool(client_.get(), opts);

  std::vector<dsm::GlobalAddress> addrs;
  for (int i = 0; i < 64; i++) addrs.push_back(*client_->Alloc(4096));

  ParallelFor(8, [&](size_t t) {
    SimClock::Reset();
    Random64 rng(t + 1);
    for (int i = 0; i < 2'000; i++) {
      const auto& a = addrs[rng.Uniform(addrs.size())];
      if (rng.Bernoulli(0.3)) {
        const uint64_t v = rng.Next();
        ASSERT_TRUE(pool.Write(a.Plus(8 * (t + 1)), &v, 8).ok());
      } else {
        uint64_t out;
        ASSERT_TRUE(pool.Read(a, &out, 8).ok());
      }
    }
  });
  EXPECT_LE(pool.ResidentPages(), 32u + opts.shards);
  const BufferPoolStats s = pool.Snapshot();
  EXPECT_GT(s.hits + s.misses, 0u);
}

TEST_F(BufferPoolTest, PolicyOverheadIsMeasuredWhenEnabled) {
  BufferPoolOptions opts = SmallPool(8);
  opts.charge_policy_overhead = true;
  BufferPool pool(client_.get(), opts);
  dsm::GlobalAddress a = *client_->Alloc(4096, 0);
  uint64_t out;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(pool.Read(a, &out, 8).ok());
  }
  EXPECT_GT(pool.Snapshot().policy_ns, 0u);
}

}  // namespace
}  // namespace dsmdb::buffer
