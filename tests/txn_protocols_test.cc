#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "core/table.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "txn/cc_protocol.h"
#include "txn/data_accessor.h"

namespace dsmdb::txn {
namespace {

struct ProtocolParam {
  std::string name;
  CcOptions cc;
};

std::vector<ProtocolParam> AllProtocols() {
  std::vector<ProtocolParam> params;
  {
    CcOptions cc;
    cc.protocol = CcProtocolKind::kTwoPlNoWait;
    params.push_back({"TwoPlNoWait", cc});
  }
  {
    CcOptions cc;
    cc.protocol = CcProtocolKind::kTwoPlNoWait;
    cc.lock_mode = TwoPlLockMode::kSharedExclusive;
    params.push_back({"TwoPlNoWaitSharedExclusive", cc});
  }
  {
    CcOptions cc;
    cc.protocol = CcProtocolKind::kTwoPlWaitDie;
    params.push_back({"TwoPlWaitDie", cc});
  }
  {
    CcOptions cc;
    cc.protocol = CcProtocolKind::kOcc;
    params.push_back({"Occ", cc});
  }
  {
    CcOptions cc;
    cc.protocol = CcProtocolKind::kTso;
    params.push_back({"Tso", cc});
  }
  {
    CcOptions cc;
    cc.protocol = CcProtocolKind::kMvcc;
    params.push_back({"MvccSi", cc});
  }
  return params;
}

class TxnProtocolTest : public ::testing::TestWithParam<ProtocolParam> {
 protected:
  static constexpr uint32_t kValueSize = 16;
  static constexpr uint64_t kNumKeys = 64;

  TxnProtocolTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 64 << 20;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    accessor_ = std::make_unique<DirectAccessor>(client_.get());
    oracle_ = std::make_unique<TimestampOracle>(
        client_.get(), OracleMode::kRdmaFaa,
        TimestampOracle::DefaultCounter());
    table_ = std::make_unique<core::Table>(
        *core::Table::Create(client_.get(), 0, {kValueSize, kNumKeys}));
    manager_ = MakeCcManager(GetParam().cc, client_.get(), accessor_.get(),
                             oracle_.get(), &sink_);
    SimClock::Reset();
  }

  RecordRef Ref(uint64_t key) const { return table_->RefFor(key); }

  std::string Value(uint64_t a, uint64_t b = 0) const {
    std::string v(kValueSize, '\0');
    EncodeFixed64(v.data(), a);
    EncodeFixed64(v.data() + 8, b == 0 ? a : b);
    return v;
  }

  /// Retries `body` (as a full transaction) until it commits.
  void CommitWithRetry(
      const std::function<Status(Transaction*)>& body) {
    for (int attempt = 0; attempt < 10'000; attempt++) {
      Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
      ASSERT_TRUE(txn.ok());
      Status s = body(txn->get());
      if (s.IsAborted()) continue;
      ASSERT_TRUE(s.ok()) << s;
      s = (*txn)->Commit();
      if (s.IsAborted()) continue;
      ASSERT_TRUE(s.ok()) << s;
      return;
    }
    FAIL() << "transaction never committed";
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
  std::unique_ptr<DirectAccessor> accessor_;
  std::unique_ptr<TimestampOracle> oracle_;
  std::unique_ptr<core::Table> table_;
  NoopLogSink sink_;
  std::unique_ptr<CcManager> manager_;
};

TEST_P(TxnProtocolTest, CommitPersistsWrites) {
  CommitWithRetry([&](Transaction* txn) {
    return txn->Write(Ref(1), Value(111));
  });
  std::string out;
  CommitWithRetry([&](Transaction* txn) { return txn->Read(Ref(1), &out); });
  EXPECT_EQ(DecodeFixed64(out.data()), 111u);
}

TEST_P(TxnProtocolTest, ReadYourOwnWrites) {
  Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE((*txn)->Write(Ref(2), Value(222)).ok());
  std::string out;
  ASSERT_TRUE((*txn)->Read(Ref(2), &out).ok());
  EXPECT_EQ(DecodeFixed64(out.data()), 222u);
  ASSERT_TRUE((*txn)->Abort().ok());
}

TEST_P(TxnProtocolTest, AbortDiscardsWrites) {
  CommitWithRetry([&](Transaction* txn) {
    return txn->Write(Ref(3), Value(10));
  });
  {
    Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)->Write(Ref(3), Value(999)).ok());
    ASSERT_TRUE((*txn)->Abort().ok());
  }
  std::string out;
  CommitWithRetry([&](Transaction* txn) { return txn->Read(Ref(3), &out); });
  EXPECT_EQ(DecodeFixed64(out.data()), 10u);
}

TEST_P(TxnProtocolTest, ValueSizeMismatchRejected) {
  Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE((*txn)->Write(Ref(1), "short").IsInvalidArgument());
  ASSERT_TRUE((*txn)->Abort().ok());
}

TEST_P(TxnProtocolTest, LocksReleasedAfterCommitAndAbort) {
  CommitWithRetry([&](Transaction* txn) {
    return txn->Write(Ref(5), Value(1));
  });
  {
    Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
    ASSERT_TRUE(txn.ok());
    (void)(*txn)->Write(Ref(5), Value(2));
    (void)(*txn)->Abort();
  }
  // Lock word must be free again.
  uint64_t lock_word = 0xFF;
  ASSERT_TRUE(client_->Read(Ref(5).LockWord(), &lock_word, 8).ok());
  EXPECT_EQ(lock_word, 0u);
}

TEST_P(TxnProtocolTest, LostUpdatePrevented) {
  // Concurrent increments with retry must not lose any update.
  CommitWithRetry([&](Transaction* txn) {
    return txn->Write(Ref(7), Value(0, 1));
  });
  const int kThreads = 4;
  const int kIncrements = 50;
  std::atomic<bool> failed{false};
  ParallelFor(kThreads, [&](size_t) {
    SimClock::Reset();
    for (int i = 0; i < kIncrements; i++) {
      for (int attempt = 0;; attempt++) {
        if (attempt > 100'000) {
          failed = true;
          return;
        }
        Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
        if (!txn.ok()) continue;
        std::string cur;
        Status s = (*txn)->Read(Ref(7), &cur);
        if (s.IsAborted()) continue;
        if (!s.ok()) continue;
        const uint64_t v = DecodeFixed64(cur.data());
        s = (*txn)->Write(Ref(7), Value(v + 1, 1));
        if (s.IsAborted()) continue;
        s = (*txn)->Commit();
        if (s.IsAborted()) continue;
        if (s.ok()) break;
      }
    }
  });
  ASSERT_FALSE(failed.load());
  std::string out;
  CommitWithRetry([&](Transaction* txn) { return txn->Read(Ref(7), &out); });
  EXPECT_EQ(DecodeFixed64(out.data()),
            static_cast<uint64_t>(kThreads * kIncrements));
}

TEST_P(TxnProtocolTest, ConcurrentTransfersConserveTotal) {
  // Classic bank invariant: concurrent transfers keep the global sum.
  const uint64_t kInitial = 1'000;
  for (uint64_t k = 0; k < kNumKeys; k++) {
    CommitWithRetry([&](Transaction* txn) {
      return txn->Write(Ref(k), Value(kInitial, 1));
    });
  }
  std::atomic<bool> failed{false};
  ParallelFor(6, [&](size_t t) {
    SimClock::Reset();
    Random64 rng(t + 1);
    for (int i = 0; i < 60; i++) {
      const uint64_t from = rng.Uniform(kNumKeys);
      uint64_t to = rng.Uniform(kNumKeys);
      if (to == from) to = (to + 1) % kNumKeys;
      const uint64_t amount = rng.Uniform(10) + 1;
      const uint64_t lo = std::min(from, to), hi = std::max(from, to);
      for (int attempt = 0;; attempt++) {
        if (attempt > 100'000) {
          failed = true;
          return;
        }
        Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
        if (!txn.ok()) continue;
        std::string a, b;
        Status s = (*txn)->Read(Ref(lo), &a);
        if (!s.ok()) continue;
        s = (*txn)->Read(Ref(hi), &b);
        if (!s.ok()) continue;
        uint64_t va = DecodeFixed64(a.data());
        uint64_t vb = DecodeFixed64(b.data());
        if (lo == from) {
          va -= amount;
          vb += amount;
        } else {
          vb -= amount;
          va += amount;
        }
        s = (*txn)->Write(Ref(lo), Value(va, 1));
        if (!s.ok()) continue;
        s = (*txn)->Write(Ref(hi), Value(vb, 1));
        if (!s.ok()) continue;
        s = (*txn)->Commit();
        if (s.ok()) break;
      }
    }
  });
  ASSERT_FALSE(failed.load());

  uint64_t total = 0;
  for (uint64_t k = 0; k < kNumKeys; k++) {
    std::string out;
    CommitWithRetry(
        [&](Transaction* txn) { return txn->Read(Ref(k), &out); });
    total += DecodeFixed64(out.data());
  }
  EXPECT_EQ(total, kInitial * kNumKeys);
}

TEST_P(TxnProtocolTest, CommittedReadsAreNotTorn) {
  // A writer keeps both halves of the value equal; committed readers must
  // never observe a mismatch.
  CommitWithRetry([&](Transaction* txn) {
    return txn->Write(Ref(9), Value(1, 1));
  });
  std::atomic<bool> torn{false};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    SimClock::Reset();
    for (uint64_t i = 2; i < 300; i++) {
      for (int attempt = 0; attempt < 10'000; attempt++) {
        Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
        if (!txn.ok()) continue;
        Status s = (*txn)->Write(Ref(9), Value(i, i));
        if (!s.ok()) continue;
        if ((*txn)->Commit().ok()) break;
      }
    }
    stop = true;
  });
  std::thread reader([&] {
    SimClock::Reset();
    while (!stop.load()) {
      Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
      if (!txn.ok()) continue;
      std::string out;
      Status s = (*txn)->Read(Ref(9), &out);
      if (!s.ok()) continue;
      if (!(*txn)->Commit().ok()) continue;
      const uint64_t lo = DecodeFixed64(out.data());
      const uint64_t hi = DecodeFixed64(out.data() + 8);
      if (lo != hi) torn = true;
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(torn.load());
}

TEST_P(TxnProtocolTest, StatsTrackCommitsAndAborts) {
  CommitWithRetry([&](Transaction* txn) {
    return txn->Write(Ref(11), Value(5));
  });
  {
    Result<std::unique_ptr<Transaction>> txn = manager_->Begin();
    ASSERT_TRUE(txn.ok());
    (void)(*txn)->Abort();
  }
  const CcStats& stats = manager_->stats();
  EXPECT_GE(stats.committed.load(), 1u);
  EXPECT_GE(stats.aborted.load(), 1u);
  EXPECT_GE(stats.begun.load(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TxnProtocolTest, ::testing::ValuesIn(AllProtocols()),
    [](const ::testing::TestParamInfo<ProtocolParam>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Protocol-specific behaviors.
// ---------------------------------------------------------------------------

class TxnSpecificTest : public ::testing::Test {
 protected:
  TxnSpecificTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    accessor_ = std::make_unique<DirectAccessor>(client_.get());
    oracle_ = std::make_unique<TimestampOracle>(
        client_.get(), OracleMode::kRdmaFaa,
        TimestampOracle::DefaultCounter());
    table_ = std::make_unique<core::Table>(
        *core::Table::Create(client_.get(), 0, {16, 32}));
    SimClock::Reset();
  }

  std::unique_ptr<CcManager> Make(CcProtocolKind kind,
                                  bool defer_write_locks = true) {
    CcOptions cc;
    cc.protocol = kind;
    cc.defer_write_locks = defer_write_locks;
    return MakeCcManager(cc, client_.get(), accessor_.get(), oracle_.get(),
                         &sink_);
  }

  std::string V(uint64_t x) {
    std::string v(16, '\0');
    EncodeFixed64(v.data(), x);
    return v;
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
  std::unique_ptr<DirectAccessor> accessor_;
  std::unique_ptr<TimestampOracle> oracle_;
  std::unique_ptr<core::Table> table_;
  NoopLogSink sink_;
};

TEST_F(TxnSpecificTest, NoWaitAbortsImmediatelyOnConflict) {
  // Eager write locking: the conflict surfaces at Write() time.
  auto mgr = Make(CcProtocolKind::kTwoPlNoWait, /*defer_write_locks=*/false);
  auto t1 = std::move(*mgr->Begin());
  ASSERT_TRUE(t1->Write(table_->RefFor(0), V(1)).ok());
  auto t2 = std::move(*mgr->Begin());
  EXPECT_TRUE(t2->Write(table_->RefFor(0), V(2)).IsAborted());
  EXPECT_GE(mgr->stats().lock_aborts.load(), 1u);
  ASSERT_TRUE(t1->Commit().ok());
}

TEST_F(TxnSpecificTest, NoWaitDeferredLocksAbortAtCommitOnConflict) {
  // defer_write_locks (default): blind writes buffer locally; the lock
  // conflict is detected by the commit-time pipelined CAS batch instead.
  auto mgr = Make(CcProtocolKind::kTwoPlNoWait);
  auto t1 = std::move(*mgr->Begin());
  ASSERT_TRUE(t1->Write(table_->RefFor(0), V(1)).ok());
  ASSERT_TRUE(t1->Commit().ok());  // t1 holds no locks afterwards

  auto holder = std::move(*mgr->Begin());
  ASSERT_TRUE(holder->Write(table_->RefFor(0), V(2)).ok());
  ASSERT_TRUE(holder->Commit().ok());

  // Simulate a mid-commit writer holding the lock word.
  ASSERT_TRUE(client_
                  ->CompareAndSwap(table_->RefFor(0).LockWord(), 0,
                                   MakeExclusiveLock(77))
                  .ok());
  auto t2 = std::move(*mgr->Begin());
  ASSERT_TRUE(t2->Write(table_->RefFor(0), V(3)).ok());  // deferred: no abort
  EXPECT_TRUE(t2->Commit().IsAborted());
  EXPECT_GE(mgr->stats().lock_aborts.load(), 1u);
  ASSERT_TRUE(
      client_->CompareAndSwap(table_->RefFor(0).LockWord(),
                              MakeExclusiveLock(77), 0)
          .ok());
  // The record still holds the last committed value.
  auto check = std::move(*mgr->Begin());
  std::string out;
  ASSERT_TRUE(check->Read(table_->RefFor(0), &out).ok());
  EXPECT_EQ(DecodeFixed64(out.data()), 2u);
  ASSERT_TRUE(check->Commit().ok());
}

TEST_F(TxnSpecificTest, OccValidationAbortsStaleReader) {
  auto mgr = Make(CcProtocolKind::kOcc);
  auto reader = std::move(*mgr->Begin());
  std::string out;
  ASSERT_TRUE(reader->Read(table_->RefFor(1), &out).ok());

  // A concurrent writer commits between read and validation.
  auto writer = std::move(*mgr->Begin());
  ASSERT_TRUE(writer->Write(table_->RefFor(1), V(50)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  // Reader's validation must now fail if it also writes something.
  ASSERT_TRUE(reader->Write(table_->RefFor(2), V(1)).ok());
  EXPECT_TRUE(reader->Commit().IsAborted());
  EXPECT_GE(mgr->stats().validation_aborts.load(), 1u);
}

TEST_F(TxnSpecificTest, OccValidationUsesOneBatchedRoundTrip) {
  auto mgr = Make(CcProtocolKind::kOcc);
  auto txn = std::move(*mgr->Begin());
  std::string out;
  for (uint64_t k = 0; k < 10; k++) {
    ASSERT_TRUE(txn->Read(table_->RefFor(k), &out).ok());
  }
  cluster_->fabric().ResetStats();
  ASSERT_TRUE(txn->Commit().ok());
  // Read-only commit: validation must be a single doorbell batch.
  const auto stats = cluster_->fabric().TotalStats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.one_sided_reads, 0u);
}

TEST_F(TxnSpecificTest, TsoRejectsWriteUnderNewerRead) {
  auto mgr = Make(CcProtocolKind::kTso);
  auto older = std::move(*mgr->Begin());    // ts = T1
  auto younger = std::move(*mgr->Begin());  // ts = T2 > T1
  std::string out;
  ASSERT_TRUE(younger->Read(table_->RefFor(3), &out).ok());  // rts = T2
  ASSERT_TRUE(younger->Commit().ok());
  // Older writer must abort: its ts < rts.
  ASSERT_TRUE(older->Write(table_->RefFor(3), V(9)).ok());
  EXPECT_TRUE(older->Commit().IsAborted());
}

TEST_F(TxnSpecificTest, MvccReadersSeeTheirSnapshot) {
  auto mgr = Make(CcProtocolKind::kMvcc);
  // Install version v=10.
  {
    auto w = std::move(*mgr->Begin());
    ASSERT_TRUE(w->Write(table_->RefFor(4), V(10)).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  auto reader = std::move(*mgr->Begin());  // snapshot before the next write
  {
    auto w = std::move(*mgr->Begin());
    ASSERT_TRUE(w->Write(table_->RefFor(4), V(20)).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  std::string out;
  ASSERT_TRUE(reader->Read(table_->RefFor(4), &out).ok());
  EXPECT_EQ(DecodeFixed64(out.data()), 10u);  // snapshot value
  ASSERT_TRUE(reader->Commit().ok());
  // A fresh reader sees the newest version.
  auto fresh = std::move(*mgr->Begin());
  ASSERT_TRUE(fresh->Read(table_->RefFor(4), &out).ok());
  EXPECT_EQ(DecodeFixed64(out.data()), 20u);
  ASSERT_TRUE(fresh->Commit().ok());
}

TEST_F(TxnSpecificTest, MvccReadOnlyNeverBlocksOnWriterLock) {
  auto mgr = Make(CcProtocolKind::kMvcc);
  {
    auto w = std::move(*mgr->Begin());
    ASSERT_TRUE(w->Write(table_->RefFor(5), V(1)).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  // Writer holds the record lock (mid-commit simulated by direct CAS).
  ASSERT_TRUE(
      client_->CompareAndSwap(table_->RefFor(5).LockWord(), 0,
                              MakeExclusiveLock(123))
          .ok());
  auto reader = std::move(*mgr->Begin());
  std::string out;
  ASSERT_TRUE(reader->Read(table_->RefFor(5), &out).ok());
  EXPECT_EQ(DecodeFixed64(out.data()), 1u);
  ASSERT_TRUE(reader->Commit().ok());
  // Clean up the artificial lock.
  ASSERT_TRUE(client_->CompareAndSwap(table_->RefFor(5).LockWord(),
                                      MakeExclusiveLock(123), 0)
                  .ok());
}

TEST_F(TxnSpecificTest, MvccFirstCommitterWins) {
  auto mgr = Make(CcProtocolKind::kMvcc);
  auto t1 = std::move(*mgr->Begin());
  auto t2 = std::move(*mgr->Begin());
  ASSERT_TRUE(t1->Write(table_->RefFor(6), V(100)).ok());
  ASSERT_TRUE(t2->Write(table_->RefFor(6), V(200)).ok());
  ASSERT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().IsAborted());  // snapshot overlap, same key
}

}  // namespace
}  // namespace dsmdb::txn
