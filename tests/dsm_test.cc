#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/coding.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/allocator.h"
#include "dsm/cluster.h"
#include "dsm/directory.h"
#include "dsm/dsm_client.h"

namespace dsmdb::dsm {
namespace {

TEST(ExtentAllocatorTest, AllocFreeReuse) {
  ExtentAllocator alloc(1 << 20);
  Result<uint64_t> a = alloc.Alloc(1000);
  ASSERT_TRUE(a.ok());
  EXPECT_GT(*a, 0u);  // offset 0 reserved for null
  EXPECT_EQ(*a % 8, 0u);
  ASSERT_TRUE(alloc.Free(*a).ok());
  Result<uint64_t> b = alloc.Alloc(1000);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // first-fit reuses the freed extent
}

TEST(ExtentAllocatorTest, DistinctLiveExtents) {
  ExtentAllocator alloc(1 << 20);
  std::set<uint64_t> offsets;
  for (int i = 0; i < 100; i++) {
    Result<uint64_t> r = alloc.Alloc(128);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(offsets.insert(*r).second);
  }
  const AllocatorStats s = alloc.GetStats();
  EXPECT_EQ(s.alloc_calls, 100u);
  EXPECT_EQ(s.allocated_bytes, 100u * 128);
}

TEST(ExtentAllocatorTest, ExhaustionAndInvalidFree) {
  ExtentAllocator alloc(4096);
  Result<uint64_t> big = alloc.Alloc(100'000);
  EXPECT_TRUE(big.status().IsOutOfMemory());
  EXPECT_TRUE(alloc.Free(12345).IsInvalidArgument());
  EXPECT_TRUE(alloc.Alloc(0).status().IsInvalidArgument());
}

TEST(ExtentAllocatorTest, CoalescingLimitsFragmentation) {
  ExtentAllocator alloc(1 << 20);
  std::vector<uint64_t> offs;
  for (int i = 0; i < 50; i++) offs.push_back(*alloc.Alloc(1024));
  for (uint64_t o : offs) ASSERT_TRUE(alloc.Free(o).ok());
  // Everything freed and coalesced: one big extent again.
  const AllocatorStats s = alloc.GetStats();
  EXPECT_EQ(s.allocated_bytes, 0u);
  EXPECT_NEAR(s.external_fragmentation, 0.0, 1e-9);
  // And a full-size allocation succeeds.
  EXPECT_TRUE(alloc.Alloc((1 << 20) - 4096).ok());
}

TEST(ExtentAllocatorTest, FragmentationMetricReflectsHoles) {
  ExtentAllocator alloc(1 << 20);
  // Fill the region completely so freed holes cannot coalesce with a
  // large tail extent.
  std::vector<uint64_t> offs;
  while (true) {
    Result<uint64_t> r = alloc.Alloc(1024);
    if (!r.ok()) break;
    offs.push_back(*r);
  }
  ASSERT_GT(offs.size(), 100u);
  for (size_t i = 0; i < offs.size(); i += 2) {
    ASSERT_TRUE(alloc.Free(offs[i]).ok());  // free every other -> holes
  }
  EXPECT_GT(alloc.GetStats().external_fragmentation, 0.3);
  // A request larger than any hole must fail despite ample free bytes.
  EXPECT_TRUE(alloc.Alloc(8 * 1024).status().IsOutOfMemory());
}

TEST(SlabAllocatorTest, SmallAllocsRoundToClasses) {
  ExtentAllocator extents(4 << 20);
  SlabAllocator slab(&extents);
  Result<uint64_t> a = slab.Alloc(70);  // -> 128 class
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(slab.Free(*a, 70).ok());
  Result<uint64_t> b = slab.Alloc(100);  // same class, reuses slot
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SlabAllocatorTest, LargeFallsThroughToExtents) {
  ExtentAllocator extents(4 << 20);
  SlabAllocator slab(&extents);
  Result<uint64_t> big = slab.Alloc(100'000);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(slab.Free(*big, 100'000).ok());
}

TEST(SlabAllocatorTest, ConcurrentAllocsAreDistinct) {
  ExtentAllocator extents(64 << 20);
  SlabAllocator slab(&extents);
  std::vector<std::vector<uint64_t>> got(8);
  ParallelFor(8, [&](size_t t) {
    for (int i = 0; i < 500; i++) got[t].push_back(*slab.Alloc(64));
  });
  std::set<uint64_t> all;
  for (const auto& v : got) {
    for (uint64_t o : v) EXPECT_TRUE(all.insert(o).second);
  }
}

TEST(GlobalAddressTest, PackUnpackRoundTrip) {
  const GlobalAddress a{7, (1ULL << 40) + 12345};
  EXPECT_EQ(GlobalAddress::Unpack(a.Pack()), a);
  EXPECT_TRUE(kNullGlobalAddress.IsNull());
  EXPECT_FALSE(a.IsNull());
  EXPECT_EQ(a.Plus(55).offset, a.offset + 55);
  EXPECT_EQ(a.Plus(55).node, a.node);
}

TEST(DirectoryTest, PeersForUpdateKeepsSharersRegistered) {
  Directory dir;
  dir.RegisterSharer(9, 1);
  dir.RegisterSharer(9, 2);
  const std::vector<uint32_t> peers = dir.PeersForUpdate(9, 1);
  EXPECT_EQ(peers, std::vector<uint32_t>{2});
  // Unlike AcquireExclusive, everyone stays registered (and the
  // requester is added).
  EXPECT_EQ(dir.Sharers(9).size(), 2u);
}

TEST(DirectoryTest, SharersAndExclusive) {
  Directory dir;
  dir.RegisterSharer(42, 1);
  dir.RegisterSharer(42, 2);
  dir.RegisterSharer(42, 5);
  EXPECT_EQ(dir.Sharers(42).size(), 3u);
  const std::vector<uint32_t> others = dir.AcquireExclusive(42, 2);
  EXPECT_EQ(others, (std::vector<uint32_t>{1, 5}));
  EXPECT_EQ(dir.Sharers(42), std::vector<uint32_t>{2});
  dir.UnregisterSharer(42, 2);
  EXPECT_TRUE(dir.Sharers(42).empty());
  EXPECT_EQ(dir.NumTrackedPages(), 0u);
}

class DsmClientTest : public ::testing::Test {
 protected:
  DsmClientTest() {
    ClusterOptions opts;
    opts.num_memory_nodes = 3;
    opts.memory_node.capacity_bytes = 8 << 20;
    cluster_ = std::make_unique<Cluster>(opts);
    client_ = std::make_unique<DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DsmClient> client_;
};

TEST_F(DsmClientTest, AllocReadWrite) {
  Result<GlobalAddress> addr = client_->Alloc(256);
  ASSERT_TRUE(addr.ok());
  EXPECT_FALSE(addr->IsNull());
  const char msg[] = "hello DSM";
  ASSERT_TRUE(client_->Write(*addr, msg, sizeof(msg)).ok());
  char out[sizeof(msg)] = {};
  ASSERT_TRUE(client_->Read(*addr, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);
  EXPECT_TRUE(client_->Free(*addr, 256).ok());
}

TEST_F(DsmClientTest, RoundRobinSpreadsAcrossNodes) {
  std::set<MemNodeId> nodes;
  for (int i = 0; i < 12; i++) {
    Result<GlobalAddress> addr = client_->Alloc(64);
    ASSERT_TRUE(addr.ok());
    nodes.insert(addr->node);
  }
  EXPECT_EQ(nodes.size(), 3u);
}

TEST_F(DsmClientTest, ExplicitNodePlacement) {
  Result<GlobalAddress> addr = client_->Alloc(64, 2);
  ASSERT_TRUE(addr.ok());
  EXPECT_EQ(addr->node, 2);
  EXPECT_TRUE(client_->Alloc(64, 9).status().IsInvalidArgument());
}

TEST_F(DsmClientTest, AtomicsOnGlobalAddresses) {
  Result<GlobalAddress> addr = client_->Alloc(64);
  ASSERT_TRUE(addr.ok());
  const uint64_t zero = 0;
  ASSERT_TRUE(client_->Write(*addr, &zero, 8).ok());
  Result<uint64_t> old = client_->FetchAndAdd(*addr, 5);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, 0u);
  Result<uint64_t> prev = client_->CompareAndSwap(*addr, 5, 77);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(*prev, 5u);
}

TEST_F(DsmClientTest, BatchRoundTrip) {
  Result<GlobalAddress> a = client_->Alloc(64);
  Result<GlobalAddress> b = client_->Alloc(64);
  ASSERT_TRUE(a.ok() && b.ok());
  uint64_t va = 11, vb = 22;
  std::vector<DsmBatchOp> writes = {{*a, &va, 8}, {*b, &vb, 8}};
  ASSERT_TRUE(client_->WriteBatch(writes).ok());
  uint64_t ra = 0, rb = 0;
  std::vector<DsmBatchOp> reads = {{*a, &ra, 8}, {*b, &rb, 8}};
  ASSERT_TRUE(client_->ReadBatch(reads).ok());
  EXPECT_EQ(ra, 11u);
  EXPECT_EQ(rb, 22u);
}

TEST_F(DsmClientTest, WriteAllReplicatesInOneOverlappedRoundTrip) {
  // k-way replication through the async verb engine: ~1 RTT + k postings,
  // not k serial round trips.
  const rdma::NetworkModel& m = cluster_->fabric().model();
  std::vector<GlobalAddress> dsts;
  for (MemNodeId n = 0; n < 3; n++) {
    Result<GlobalAddress> a = client_->Alloc(64, n);
    ASSERT_TRUE(a.ok());
    dsts.push_back(*a);
  }
  std::string payload(64, 'r');
  SimClock::Reset();
  ASSERT_TRUE(client_->WriteAll(dsts, payload.data(), payload.size()).ok());
  EXPECT_EQ(SimClock::Now(),
            3 * m.post_overhead_ns + m.rtt_ns + m.TransferNs(64));
  EXPECT_LT(SimClock::Now(), 2 * m.OneSidedNs(64));
  for (const GlobalAddress& d : dsts) {
    std::string got(64, '\0');
    ASSERT_TRUE(client_->Read(d, got.data(), got.size()).ok());
    EXPECT_EQ(got, payload);
  }
}

TEST_F(DsmClientTest, OffloadExecutesOnMemoryNode) {
  // Register a near-data sum over an array we write one-sided.
  Result<GlobalAddress> addr = client_->Alloc(8 * 100, 0);
  ASSERT_TRUE(addr.ok());
  for (uint64_t i = 0; i < 100; i++) {
    const uint64_t v = i + 1;
    ASSERT_TRUE(client_->Write(addr->Plus(i * 8), &v, 8).ok());
  }
  cluster_->memory_node(0)->RegisterOffload(
      0, [](MemoryNode& node, std::string_view arg, std::string* out) {
        const uint64_t off = DecodeFixed64(arg.data());
        const uint64_t n = DecodeFixed64(arg.data() + 8);
        uint64_t sum = 0;
        for (uint64_t i = 0; i < n; i++) {
          sum += DecodeFixed64(node.base() + off + i * 8);
        }
        PutFixed64(out, sum);
        return 30 * n;  // per-element cost
      });
  std::string arg;
  PutFixed64(&arg, addr->offset);
  PutFixed64(&arg, 100);
  std::string out;
  ASSERT_TRUE(client_->Offload(0, 0, arg, &out).ok());
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(DecodeFixed64(out.data()), 5050u);
}

TEST_F(DsmClientTest, OffloadUnknownFunction) {
  std::string out;
  EXPECT_TRUE(client_->Offload(0, 99, "", &out).IsNotFound());
}

TEST_F(DsmClientTest, DirectoryRpcPath) {
  Result<GlobalAddress> page = client_->Alloc(4096, 1);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(client_->DirRegisterSharer(*page, 7).ok());
  ASSERT_TRUE(client_->DirRegisterSharer(*page, 9).ok());
  Result<std::vector<uint32_t>> others =
      client_->DirAcquireExclusive(*page, 7);
  ASSERT_TRUE(others.ok());
  EXPECT_EQ(*others, std::vector<uint32_t>{9});
}

TEST_F(DsmClientTest, ReplicaLogAppendRead) {
  ASSERT_TRUE(client_->LogAppend(1, 1234, "alpha").ok());
  ASSERT_TRUE(client_->LogAppend(1, 1234, "beta").ok());
  Result<std::string> data = client_->LogRead(1, 1234);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "alphabeta");
  EXPECT_TRUE(client_->LogRead(1, 777).status().IsNotFound());
}

TEST_F(DsmClientTest, CrashLosesContentsRecoveryRestoresService) {
  Result<GlobalAddress> addr = client_->Alloc(64, 1);
  ASSERT_TRUE(addr.ok());
  const uint64_t v = 4242;
  ASSERT_TRUE(client_->Write(*addr, &v, 8).ok());

  cluster_->CrashMemoryNode(1);
  EXPECT_FALSE(cluster_->IsMemoryNodeAlive(1));
  uint64_t out = 0;
  EXPECT_TRUE(client_->Read(*addr, &out, 8).IsUnavailable());
  // Other nodes unaffected.
  EXPECT_TRUE(client_->Alloc(64, 0).ok());

  cluster_->RecoverMemoryNode(1);
  EXPECT_TRUE(cluster_->IsMemoryNodeAlive(1));
  // Before the client re-binds, the incarnation fence rejects the op.
  EXPECT_TRUE(client_->Read(*addr, &out, 8).IsStaleIncarnation());
  client_->RefreshIncarnation(1);
  // Same logical address resolves again, but DRAM contents are gone.
  out = 99;
  ASSERT_TRUE(client_->Read(*addr, &out, 8).ok());
  EXPECT_EQ(out, 0u);
}

TEST_F(DsmClientTest, AllocExhaustionReportsOutOfMemory) {
  // Exhaust node 0 (8 MiB region) with large extents.
  Status last = Status::OK();
  for (int i = 0; i < 64; i++) {
    Result<GlobalAddress> r = client_->Alloc(1 << 20, 0);
    if (!r.ok()) {
      last = r.status();
      break;
    }
  }
  EXPECT_TRUE(last.IsOutOfMemory());
}

}  // namespace
}  // namespace dsmdb::dsm
