#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/dsmdb.h"
#include "obs/flight_recorder.h"
#include "obs/heat_map.h"
#include "obs/obs_config.h"
#include "obs/skew_monitor.h"
#include "obs/stats_exporter.h"

namespace dsmdb::obs {
namespace {

class HeatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SkewMonitor::SetEnabled(false);
    HeatMap::Instance().Configure(HeatOptions{});
  }
  void TearDown() override {
    HeatMap::SetEnabled(false);
    SkewMonitor::SetEnabled(false);
  }
};

// Acceptance check from the heat-observatory issue: under YCSB's default
// zipf theta=0.99 the space-bounded sketch must recover >= 90% of the true
// top-k hot keys.
TEST_F(HeatTest, SketchTopKRecallUnderZipf099) {
  constexpr uint64_t kKeys = 100'000;
  constexpr size_t kTopK = 16;
  constexpr int kSamples = 200'000;
  ZipfianGenerator zipf(kKeys, 0.99, /*seed=*/11);
  std::map<uint64_t, uint64_t> exact;
  HeatMap& map = HeatMap::Instance();
  for (int i = 0; i < kSamples; i++) {
    const uint64_t key = zipf.NextScrambled();
    exact[key]++;
    map.RecordKey(HeatKind::kRead, key, kKeys);
  }

  std::vector<std::pair<uint64_t, uint64_t>> ranked;  // (count, key)
  for (const auto& [key, count] : exact) ranked.push_back({count, key});
  std::sort(ranked.rbegin(), ranked.rend());
  std::set<uint64_t> truth;
  for (size_t i = 0; i < kTopK; i++) truth.insert(ranked[i].second);

  const HeatSnapshot snap = map.Snapshot(kTopK);
  ASSERT_EQ(snap.hot_keys.size(), kTopK);
  size_t recalled = 0;
  for (const HotKey& hk : snap.hot_keys) {
    if (truth.count(hk.key)) recalled++;
  }
  EXPECT_GE(static_cast<double>(recalled) / kTopK, 0.9)
      << "sketch recalled " << recalled << "/" << kTopK;

  // SpaceSaving guarantee: est - error is a lower bound on (and est an
  // upper bound for) the true count of every reported key.
  for (const HotKey& hk : snap.hot_keys) {
    const auto it = exact.find(hk.key);
    ASSERT_NE(it, exact.end());
    EXPECT_GE(hk.est + 1e-9, static_cast<double>(it->second));
    EXPECT_LE(hk.est - hk.error, static_cast<double>(it->second) + 1e-9);
  }
  EXPECT_GT(snap.total_accesses, 0u);
}

TEST_F(HeatTest, FoldDecaysHeatAndKeepsRawTotals) {
  HeatOptions opts;
  opts.num_shards = 4;
  opts.decay = 0.5;
  HeatMap& map = HeatMap::Instance();
  map.Configure(opts);

  // keyspace == num_shards makes shard attribution the identity.
  map.RecordKey(HeatKind::kWrite, /*key=*/1, /*keyspace=*/4, /*count=*/100);
  map.Fold();
  HeatSnapshot snap = map.Snapshot();
  const size_t w = static_cast<size_t>(HeatKind::kWrite);
  // Post-add decay: heat' = (heat + interval_count) * decay.
  EXPECT_DOUBLE_EQ(snap.shard_heat[1][w], 50.0);
  EXPECT_EQ(snap.shard_total[1][w], 100u);
  EXPECT_EQ(snap.intervals, 1u);

  // Idle interval: EWMA halves, raw totals never decay.
  map.Fold();
  snap = map.Snapshot();
  EXPECT_DOUBLE_EQ(snap.shard_heat[1][w], 25.0);
  EXPECT_EQ(snap.shard_total[1][w], 100u);

  // New traffic folds on top of the decayed tail.
  map.RecordKey(HeatKind::kWrite, 1, 4, 10);
  map.Fold();
  snap = map.Snapshot();
  EXPECT_DOUBLE_EQ(snap.shard_heat[1][w], 17.5);  // (25 + 10) * 0.5
  EXPECT_EQ(snap.shard_total[1][w], 110u);
}

TEST_F(HeatTest, SketchDecayEvictsColdKeys) {
  HeatOptions opts;
  opts.decay = 0.5;
  HeatMap& map = HeatMap::Instance();
  map.Configure(opts);
  map.RecordKey(HeatKind::kRead, 7, 100, /*count=*/4);
  ASSERT_EQ(map.Snapshot().hot_keys.size(), 1u);
  // 4 -> 2 -> 1 -> 0.5 -> dropped (est < 0.5 is indistinguishable from
  // noise); the sketch follows the current hot set, not history.
  map.Fold();
  map.Fold();
  map.Fold();
  EXPECT_EQ(map.Snapshot().hot_keys.size(), 1u);
  map.Fold();
  EXPECT_TRUE(map.Snapshot().hot_keys.empty());
}

TEST_F(HeatTest, ResolvesPackedAddressesThroughRegisteredLayout) {
  HeatMap& map = HeatMap::Instance();
  HeatMap::TableLayout layout;
  layout.table_id = 9;
  layout.num_keys = 10;
  layout.stride = 16;
  // Two stripes: node 0 @ 0x1000, node 1 @ 0x2000 (packed form).
  layout.stripe_bases = {0x1000, (1ULL << 48) | 0x2000};
  map.RegisterTableLayout(layout);

  // key 5 -> node 1, slot 2 -> offset 0x2000 + 2*16.
  map.RecordPackedAddr(HeatKind::kRead, (1ULL << 48) | (0x2000 + 32));
  HeatSnapshot snap = map.Snapshot();
  ASSERT_EQ(snap.hot_keys.size(), 1u);
  EXPECT_EQ(snap.hot_keys[0].key, 5u);
  EXPECT_EQ(map.unresolved(), 0u);

  // Outside every stripe: charged to the catch-all, never the sketch.
  map.RecordPackedAddr(HeatKind::kRead, 0x999999);
  EXPECT_EQ(map.unresolved(), 1u);
  EXPECT_EQ(map.Snapshot().hot_keys.size(), 1u);
}

TEST_F(HeatTest, TableCreateRegistersResolvableLayout) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 8 << 20;
  core::DbOptions dopts;
  core::DsmDb db(copts, dopts);
  (void)db.AddComputeNode();
  const core::Table* t = *db.CreateTable("heat_kv", {64, 1'000});
  (void)db.FinishSetup();

  HeatMap& map = HeatMap::Instance();
  // Table creation zero-fills its stripes before the layout exists, so
  // those setup writes land in the catch-all; record-level traffic after
  // FinishSetup must all resolve.
  const uint64_t baseline = map.unresolved();
  for (uint64_t key : {3u, 502u, 999u}) {
    map.RecordPackedAddr(HeatKind::kWrite, t->RefFor(key).addr.Pack());
  }
  EXPECT_EQ(map.unresolved(), baseline);
  const HeatSnapshot snap = map.Snapshot();
  std::set<uint64_t> seen;
  for (const HotKey& hk : snap.hot_keys) seen.insert(hk.key);
  EXPECT_TRUE(seen.count(3) && seen.count(502) && seen.count(999));
}

class SkewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HeatOptions hopts;
    hopts.decay = 0.5;  // fast forgetting so rotations show as churn
    HeatMap::Instance().Configure(hopts);
    SkewMonitorOptions sopts;
    sopts.interval_ns = 1'000;
    sopts.top_k = 8;
    sopts.min_interval_accesses = 64;
    SkewMonitor::Instance().Configure(sopts);
  }
  void TearDown() override {
    HeatMap::SetEnabled(false);
    SkewMonitor::SetEnabled(false);
  }

  /// One interval of scripted traffic: zipf-shaped counts over 8 hot keys
  /// starting at `hot_base`, plus uniform background noise.
  void FeedInterval(uint64_t hot_base) {
    HeatMap& map = HeatMap::Instance();
    for (uint64_t i = 0; i < 8; i++) {
      map.RecordKey(HeatKind::kRead, hot_base + i, kKeys, 400 / (i + 1));
    }
    for (uint64_t i = 0; i < 64; i++) {
      map.RecordKey(HeatKind::kRead, (noise_ * 977 + i * 131) % kKeys,
                    kKeys);
    }
    noise_++;
  }

  static constexpr uint64_t kKeys = 50'000;
  uint64_t noise_ = 0;
};

// Acceptance check: a scripted hotspot rotation must raise SKEW-SHIFT
// within 3 sampling intervals, and a stable hot set must not.
TEST_F(SkewTest, FlagsScriptedHotspotRotationWithinThreeIntervals) {
  SkewMonitor& mon = SkewMonitor::Instance();
  uint64_t t = 0;
  for (int i = 0; i < 5; i++) {
    FeedInterval(/*hot_base=*/0);
    mon.ForceSample(t += 1'000);
  }
  EXPECT_EQ(mon.shift_count(), 0u) << "stable hot set must not flag";
  const SkewSignals stable = mon.Latest();
  EXPECT_GE(stable.top_k_share, 0.5);  // concentrated hot set
  EXPECT_GT(stable.zipf_theta, 0.3);   // visibly skewed
  EXPECT_LE(stable.churn, 0.25);
  ASSERT_FALSE(stable.top_keys.empty());
  EXPECT_EQ(stable.top_keys[0].key, 0u);  // hottest scripted key

  // Hotspot jumps to a disjoint range; the flag must fire within 3
  // intervals of the rotation.
  int intervals_to_flag = -1;
  for (int i = 1; i <= 3; i++) {
    FeedInterval(/*hot_base=*/25'000);
    mon.ForceSample(t += 1'000);
    if (mon.Latest().shift) {
      intervals_to_flag = i;
      break;
    }
  }
  ASSERT_NE(intervals_to_flag, -1) << "shift not flagged within 3 intervals";
  EXPECT_GE(mon.shift_count(), 1u);
  EXPECT_GE(mon.Latest().churn, 0.5);

  // History is oldest-first and remembers the flagged interval.
  const std::vector<SkewSignals> history = mon.History();
  ASSERT_GE(history.size(), 2u);
  EXPECT_LT(history.front().seq, history.back().seq);
  bool flagged = false;
  for (const SkewSignals& sig : history) flagged |= sig.shift;
  EXPECT_TRUE(flagged);
}

TEST_F(SkewTest, IntervalCountersAreDeltasNotTotals) {
  SkewMonitor& mon = SkewMonitor::Instance();
  HeatMap& map = HeatMap::Instance();
  map.RecordKey(HeatKind::kRead, 1, kKeys, 100);
  map.RecordKey(HeatKind::kAbort, 1, kKeys, 7);
  mon.ForceSample(1'000);
  EXPECT_EQ(mon.Latest().interval_accesses, 100u);
  EXPECT_EQ(mon.Latest().interval_aborts, 7u);
  map.RecordKey(HeatKind::kRead, 1, kKeys, 25);
  mon.ForceSample(2'000);
  EXPECT_EQ(mon.Latest().interval_accesses, 25u);
  EXPECT_EQ(mon.Latest().interval_aborts, 0u);
}

TEST_F(SkewTest, ShardManagerProjectsHeatOntoOwners) {
  // 4 owners over 50k keys; all heat scripted onto the first hot range.
  core::ShardManager shards(kKeys, 4);
  SkewMonitor& mon = SkewMonitor::Instance();
  FeedInterval(/*hot_base=*/0);
  mon.ForceSample(1'000);
  const std::vector<double> owner_heat = shards.OwnerHeat(mon.Latest());
  ASSERT_EQ(owner_heat.size(), 4u);
  // Owner 0 holds [0, 12.5k): it must carry the dominant share.
  EXPECT_GT(owner_heat[0], owner_heat[1]);
  EXPECT_GT(owner_heat[0], owner_heat[2]);
  EXPECT_GT(owner_heat[0], owner_heat[3]);
}

TEST_F(SkewTest, ConcurrentMaybeSampleAgainstConfigure) {
  // Hammer the sampling fast path from worker threads while the control
  // plane reconfigures both the skew monitor and the flight recorder —
  // the race the try_lock + atomic-gate discipline must survive.
  ObsConfig::SetEnabled(true);
  FlightRecorder::Instance().Configure(/*interval_ns=*/500,
                                       /*capacity=*/64);
  auto token = FlightRecorder::Instance().RegisterGauge(
      "heat_test.gauge", [](uint64_t) { return 1.0; });
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; w++) {
    workers.emplace_back([&, w] {
      uint64_t now = w * 17;
      while (!stop.load(std::memory_order_relaxed)) {
        HeatMap::Instance().RecordKey(HeatKind::kRead, now % kKeys, kKeys);
        SkewMonitor::Instance().MaybeSample(now);
        FlightRecorder::Instance().MaybeSample(now);
        now += 257;
      }
    });
  }
  for (int i = 0; i < 50; i++) {
    SkewMonitorOptions sopts;
    sopts.interval_ns = 500 + i;
    SkewMonitor::Instance().Configure(sopts);
    FlightRecorder::Instance().Configure(400 + i, 64);
    (void)SkewMonitor::Instance().Latest();
    (void)FlightRecorder::Instance().Snapshot();
  }
  stop.store(true);
  for (auto& t : workers) t.join();
  // The last Configure zeroed the sample count; prove the recorder still
  // works after the churn with one deterministic sample.
  FlightRecorder::Instance().MaybeSample(1'000'000);
  EXPECT_GT(FlightRecorder::Instance().total_samples(), 0u);
  token.Release();
  FlightRecorder::Instance().Clear();
}

TEST(HeatObsTest, GaugeFamilyEmitsLabeledSeries) {
  ObsConfig::SetEnabled(true);
  FlightRecorder& fr = FlightRecorder::Instance();
  fr.Configure(/*interval_ns=*/100, /*capacity=*/16);
  auto token = fr.RegisterGaugeFamily(
      "heat.shard",
      [](uint64_t, std::vector<std::pair<std::string, double>>* out) {
        out->emplace_back("3", 7.0);
        out->emplace_back("12", 9.0);
      });
  fr.MaybeSample(100);
  fr.MaybeSample(250);
  const FlightRecorder::Series series = fr.Snapshot();
  ASSERT_EQ(series.t_ns.size(), 2u);
  ASSERT_TRUE(series.values.count("heat.shard{3}"));
  ASSERT_TRUE(series.values.count("heat.shard{12}"));
  EXPECT_DOUBLE_EQ(series.values.at("heat.shard{3}")[0], 7.0);
  EXPECT_DOUBLE_EQ(series.values.at("heat.shard{12}")[1], 9.0);
  token.Release();
  fr.Clear();
}

TEST(HeatObsTest, StatsExporterEmitsMetaAndHeatSections) {
  HeatMap::Instance().Configure(HeatOptions{});
  HeatMap::Instance().RecordKey(HeatKind::kRead, 42, 1'000, 10);
  HeatMap::Instance().Fold();

  SkewMonitorOptions sopts;
  sopts.interval_ns = 1'000;
  SkewMonitor::Instance().Configure(sopts);
  SkewMonitor::Instance().ForceSample(1'000);

  StatsExporter exporter;
  exporter.StampRunMeta(/*seed=*/1234);
  exporter.SetMeta("bench", "heat_test");
  exporter.AddHeat(HeatMap::Instance().Snapshot(),
                   SkewMonitor::Instance().Latest());
  EXPECT_FALSE(exporter.empty());

  const std::string json = exporter.ToJson();
  EXPECT_NE(json.find("\"meta\":{"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"seed\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"heat_test\""), std::string::npos);
  EXPECT_NE(json.find("\"heat\":{"), std::string::npos);
  EXPECT_NE(json.find("\"hot_keys\":[{\"key\":42"), std::string::npos);
  EXPECT_NE(json.find("\"skew\":{"), std::string::npos);
  EXPECT_NE(json.find("\"shift\":false"), std::string::npos);

  const std::string text = exporter.ToText();
  EXPECT_NE(text.find("heat.hot_keys"), std::string::npos);

  HeatMap::SetEnabled(false);
  SkewMonitor::SetEnabled(false);
}

}  // namespace
}  // namespace dsmdb::obs
