#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "log/log_record.h"
#include "log/recovery.h"
#include "log/replicated_log.h"
#include "log/wal.h"
#include "storage/cloud_storage.h"

namespace dsmdb::log {
namespace {

LogRecord MakeRecord(uint64_t txn, LogRecordType type,
                     std::string payload = "") {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = type;
  rec.payload = std::move(payload);
  return rec;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord rec = MakeRecord(42, LogRecordType::kUpdate, "payload-bytes");
  rec.lsn = 7;
  std::string buf;
  EncodeLogRecord(rec, &buf);
  size_t pos = 0;
  LogRecord out;
  ASSERT_TRUE(DecodeLogRecord(buf, &pos, &out).ok());
  EXPECT_EQ(out.lsn, 7u);
  EXPECT_EQ(out.txn_id, 42u);
  EXPECT_EQ(out.type, LogRecordType::kUpdate);
  EXPECT_EQ(out.payload, "payload-bytes");
  EXPECT_EQ(pos, buf.size());
}

TEST(LogRecordTest, ChecksumCatchesCorruption) {
  LogRecord rec = MakeRecord(1, LogRecordType::kCommit);
  std::string buf;
  EncodeLogRecord(rec, &buf);
  buf[6] ^= 0x40;  // flip a bit in the body
  size_t pos = 0;
  LogRecord out;
  EXPECT_TRUE(DecodeLogRecord(buf, &pos, &out).IsCorruption());
}

TEST(LogRecordTest, TornTailIsDiscarded) {
  std::string buf;
  for (int i = 0; i < 3; i++) {
    EncodeLogRecord(MakeRecord(i, LogRecordType::kCommit), &buf);
  }
  buf.resize(buf.size() - 5);  // tear the last record
  std::vector<LogRecord> records;
  ASSERT_TRUE(ParseLog(buf, &records).ok());
  EXPECT_EQ(records.size(), 2u);
}

TEST(WalTest, AppendSyncIsDurable) {
  storage::CloudStorage cloud;
  Wal wal(&cloud, WalOptions{});
  SimClock::Reset();
  Result<uint64_t> lsn =
      wal.AppendSync(MakeRecord(1, LogRecordType::kCommit));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(wal.DurableLsn(), *lsn);
  EXPECT_GE(SimClock::Now(),
            cloud.options().block.write_latency_ns);  // paid storage
  EXPECT_GT(cloud.StreamBytes("wal"), 0u);
}

TEST(WalTest, AsyncRecordsFlushWithNextSync) {
  storage::CloudStorage cloud;
  Wal wal(&cloud, WalOptions{});
  const uint64_t l1 = wal.AppendAsync(MakeRecord(1, LogRecordType::kUpdate));
  EXPECT_LT(wal.DurableLsn(), l1);
  Result<uint64_t> l2 = wal.AppendSync(MakeRecord(1, LogRecordType::kCommit));
  ASSERT_TRUE(l2.ok());
  EXPECT_GE(wal.DurableLsn(), *l2);
  // Both records in the stream.
  std::vector<LogRecord> records;
  Result<std::string> image = cloud.ReadStream("wal");
  ASSERT_TRUE(image.ok());
  ASSERT_TRUE(ParseLog(*image, &records).ok());
  EXPECT_EQ(records.size(), 2u);
}

TEST(WalTest, GroupCommitBatchesConcurrentCommitters) {
  storage::CloudStorageOptions sopts;
  sopts.real_append_delay_us = 300;  // make flushes overlap on any host
  storage::CloudStorage cloud(sopts);
  WalOptions opts;
  opts.group_commit = true;
  Wal wal(&cloud, opts);
  ParallelFor(16, [&](size_t t) {
    SimClock::Reset();
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(
          wal.AppendSync(MakeRecord(t * 100 + i, LogRecordType::kCommit))
              .ok());
    }
  });
  // 320 commits must have shared flushes.
  EXPECT_LT(wal.FlushCount(), 320u);
  EXPECT_GE(wal.DurableLsn(), 320u);
  // Every record made it to storage.
  std::vector<LogRecord> records;
  ASSERT_TRUE(ParseLog(*cloud.ReadStream("wal"), &records).ok());
  EXPECT_EQ(records.size(), 320u);
}

TEST(WalTest, NoGroupCommitFlushesPerCommit) {
  storage::CloudStorage cloud;
  WalOptions opts;
  opts.group_commit = false;
  Wal wal(&cloud, opts);
  SimClock::Reset();
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(wal.AppendSync(MakeRecord(i, LogRecordType::kCommit)).ok());
  }
  EXPECT_EQ(wal.FlushCount(), 5u);
}

TEST(WalTest, FlushForcesAsyncRecords) {
  storage::CloudStorage cloud;
  Wal wal(&cloud, WalOptions{});
  wal.AppendAsync(MakeRecord(9, LogRecordType::kUpdate));
  ASSERT_TRUE(wal.Flush().ok());
  std::vector<LogRecord> records;
  ASSERT_TRUE(ParseLog(*cloud.ReadStream("wal"), &records).ok());
  EXPECT_EQ(records.size(), 1u);
}

class ReplicatedLogTest : public ::testing::Test {
 protected:
  ReplicatedLogTest() {
    dsm::ClusterOptions opts;
    opts.num_memory_nodes = 4;
    cluster_ = std::make_unique<dsm::Cluster>(opts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
};

TEST_F(ReplicatedLogTest, AppendAndGather) {
  ReplicatedLogOptions opts;
  opts.replication_factor = 3;
  ReplicatedLog rlog(client_.get(), opts);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(
        rlog.AppendSync(MakeRecord(i, LogRecordType::kCommit)).ok());
  }
  EXPECT_EQ(rlog.DurableLsn(), 10u);
  Result<std::vector<LogRecord>> records = rlog.GatherLog();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  for (size_t i = 1; i < records->size(); i++) {
    EXPECT_LT((*records)[i - 1].lsn, (*records)[i].lsn);
  }
}

TEST_F(ReplicatedLogTest, SurvivesKMinusOneCrashes) {
  ReplicatedLogOptions opts;
  opts.replication_factor = 3;
  ReplicatedLog rlog(client_.get(), opts);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(
        rlog.AppendSync(MakeRecord(i, LogRecordType::kCommit)).ok());
  }
  // Crash two of the replicas of segment 0.
  cluster_->CrashMemoryNode(rlog.ReplicaNode(0, 0));
  const dsm::MemNodeId second = rlog.ReplicaNode(0, 1);
  if (cluster_->IsMemoryNodeAlive(second)) {
    cluster_->CrashMemoryNode(second);
  }
  Result<std::vector<LogRecord>> records = rlog.GatherLog();
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ(records->size(), 20u);
}

TEST_F(ReplicatedLogTest, CommitLatencyIsMicrosecondsNotMilliseconds) {
  ReplicatedLog rlog(client_.get(), ReplicatedLogOptions{});
  SimClock::Reset();
  ASSERT_TRUE(rlog.AppendSync(MakeRecord(1, LogRecordType::kCommit)).ok());
  // The paper's point: memory replication avoids the storage round trip.
  EXPECT_LT(SimClock::Now(), 100'000u);  // << 0.5 ms EBS latency
}

TEST_F(ReplicatedLogTest, AppendFailsWhenAReplicaIsDown) {
  ReplicatedLogOptions opts;
  opts.replication_factor = 4;  // uses all nodes
  ReplicatedLog rlog(client_.get(), opts);
  cluster_->CrashMemoryNode(2);
  Status s =
      rlog.AppendSync(MakeRecord(1, LogRecordType::kCommit)).status();
  EXPECT_TRUE(s.IsUnavailable());
}

TEST(RedoRecoveryTest, AppliesOnlyCommitted) {
  std::vector<LogRecord> records;
  auto add = [&](uint64_t lsn, uint64_t txn, LogRecordType type) {
    LogRecord rec = MakeRecord(txn, type, "p" + std::to_string(lsn));
    rec.lsn = lsn;
    records.push_back(rec);
  };
  add(1, 100, LogRecordType::kUpdate);
  add(2, 200, LogRecordType::kUpdate);  // never commits
  add(3, 100, LogRecordType::kUpdate);
  add(4, 100, LogRecordType::kCommit);
  add(5, 200, LogRecordType::kAbort);

  std::vector<uint64_t> applied;
  Result<uint64_t> n = RedoRecovery::Replay(
      records, [&](const LogRecord& rec) { applied.push_back(rec.lsn); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(applied, (std::vector<uint64_t>{1, 3}));
}

TEST(RedoRecoveryTest, StartsAfterCheckpoint) {
  std::vector<LogRecord> records;
  auto add = [&](uint64_t lsn, uint64_t txn, LogRecordType type) {
    LogRecord rec = MakeRecord(txn, type);
    rec.lsn = lsn;
    records.push_back(rec);
  };
  add(1, 1, LogRecordType::kUpdate);
  add(2, 1, LogRecordType::kCommit);
  add(3, 0, LogRecordType::kCheckpoint);
  add(4, 2, LogRecordType::kUpdate);
  add(5, 2, LogRecordType::kCommit);
  uint64_t applied = 0;
  Result<uint64_t> n =
      RedoRecovery::Replay(records, [&](const LogRecord&) { applied++; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(applied, 1u);  // only lsn 4
}

TEST(RedoRecoveryTest, ReplayFromImageSortsAndTolleratesTorn) {
  std::string image;
  LogRecord a = MakeRecord(1, LogRecordType::kUpdate);
  a.lsn = 2;
  LogRecord c = MakeRecord(1, LogRecordType::kCommit);
  c.lsn = 3;
  LogRecord b = MakeRecord(1, LogRecordType::kUpdate);
  b.lsn = 1;
  EncodeLogRecord(a, &image);
  EncodeLogRecord(c, &image);
  EncodeLogRecord(b, &image);
  image.append("torn-garbage");
  std::vector<uint64_t> applied;
  Result<uint64_t> n = RedoRecovery::ReplayFromImage(
      image, [&](const LogRecord& rec) { applied.push_back(rec.lsn); });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(applied, (std::vector<uint64_t>{1, 2}));
}

TEST(CommandLoggingTest, SingleMasterReplays) {
  std::vector<LogRecord> records;
  LogRecord cmd = MakeRecord(5, LogRecordType::kCommand, "transfer 1 2 30");
  cmd.lsn = 1;
  LogRecord commit = MakeRecord(5, LogRecordType::kCommit);
  commit.lsn = 2;
  records.push_back(cmd);
  records.push_back(commit);
  uint64_t executed = 0;
  Result<uint64_t> n = RedoRecovery::ReplayCommands(
      records, /*sources_observed=*/1,
      [&](const LogRecord&) { executed++; });
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(executed, 1u);
}

TEST(CommandLoggingTest, MultiMasterIsRejected) {
  // The paper's caveat: "command logging in DSM-DB cannot rebuild the same
  // states upon crash because with multi-master, the system may not be
  // able to determine the global transaction order".
  Result<uint64_t> n = RedoRecovery::ReplayCommands(
      {}, /*sources_observed=*/2, [](const LogRecord&) {});
  EXPECT_TRUE(n.status().IsNotSupported());
}

}  // namespace
}  // namespace dsmdb::log
