#include <gtest/gtest.h>

#include <atomic>

#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "core/dsmdb.h"
#include "core/recovery_manager.h"
#include "workload/tpcc_lite.h"

namespace dsmdb {
namespace {

using core::Architecture;
using core::ComputeNode;
using core::DbOptions;
using core::DsmDb;
using core::Table;
using core::TxnOp;

/// End-to-end matrix: every Figure-3 architecture x every CC protocol must
/// preserve the bank invariant under concurrent multi-node transfers.
struct MatrixParam {
  Architecture arch;
  txn::CcProtocolKind protocol;
  std::string name;
};

std::vector<MatrixParam> Matrix() {
  std::vector<MatrixParam> out;
  const std::pair<Architecture, const char*> archs[] = {
      {Architecture::kNoCacheNoSharding, "3a"},
      {Architecture::kCacheNoSharding, "3b"},
      {Architecture::kCacheSharding, "3c"},
  };
  const std::pair<txn::CcProtocolKind, const char*> protos[] = {
      {txn::CcProtocolKind::kTwoPlNoWait, "TwoPl"},
      {txn::CcProtocolKind::kOcc, "Occ"},
      {txn::CcProtocolKind::kMvcc, "Mvcc"},
  };
  for (const auto& [arch, an] : archs) {
    for (const auto& [proto, pn] : protos) {
      out.push_back({arch, proto, std::string(an) + pn});
    }
  }
  return out;
}

class ArchProtocolMatrixTest : public ::testing::TestWithParam<MatrixParam> {
};

TEST_P(ArchProtocolMatrixTest, ConcurrentTransfersConserveMoney) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;
  DbOptions dopts;
  dopts.architecture = GetParam().arch;
  dopts.cc.protocol = GetParam().protocol;
  dopts.buffer.capacity_bytes = 256 * 4096;
  dopts.buffer.charge_policy_overhead = false;

  DsmDb db(copts, dopts);
  std::vector<ComputeNode*> nodes = {db.AddComputeNode(),
                                     db.AddComputeNode()};
  const Table* t = *db.CreateTable("bank", {64, 60});
  ASSERT_TRUE(db.FinishSetup().ok());

  std::string v(64, '\0');
  EncodeFixed64(v.data(), 1'000);
  for (uint64_t k = 0; k < 60; k++) {
    for (int attempt = 0; attempt < 1'000; attempt++) {
      Result<core::TxnResult> r =
          nodes[0]->ExecuteOneShot(*t, {TxnOp::Write(k, v)});
      ASSERT_TRUE(r.ok());
      if (r->committed) break;
    }
  }

  std::atomic<bool> failed{false};
  ParallelFor(4, [&](size_t w) {
    SimClock::Reset();
    Random64 rng(w + 77);
    ComputeNode* cn = nodes[w % 2];
    for (int i = 0; i < 40; i++) {
      const uint64_t a = rng.Uniform(60);
      uint64_t b = rng.Uniform(60);
      if (b == a) b = (b + 1) % 60;
      const int64_t amt = static_cast<int64_t>(rng.Uniform(20)) + 1;
      const uint64_t lo = std::min(a, b), hi = std::max(a, b);
      bool committed = false;
      for (int attempt = 0; attempt < 50'000 && !committed; attempt++) {
        Result<core::TxnResult> r = cn->ExecuteOneShot(
            *t, {TxnOp::Add(lo, lo == a ? -amt : amt),
                 TxnOp::Add(hi, hi == a ? -amt : amt)});
        if (!r.ok()) {
          failed = true;
          return;
        }
        committed = r->committed;
      }
      if (!committed) {
        failed = true;
        return;
      }
    }
  });
  ASSERT_FALSE(failed.load());

  int64_t total = 0;
  for (uint64_t k = 0; k < 60; k++) {
    Result<core::TxnResult> r = nodes[1]->ExecuteOneShot(*t, {TxnOp::Read(k)});
    ASSERT_TRUE(r.ok() && r->committed);
    total += static_cast<int64_t>(DecodeFixed64(r->reads[0].data()));
  }
  EXPECT_EQ(total, 60 * 1'000);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ArchProtocolMatrixTest,
    ::testing::ValuesIn(Matrix()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return info.param.name;
    });

/// TPC-C-lite consistency across protocols: district order-ids only grow,
/// warehouse + district ytd stay in sync with payments.
class TpccProtocolTest
    : public ::testing::TestWithParam<txn::CcProtocolKind> {};

TEST_P(TpccProtocolTest, MoneyAndOrderCountersStayConsistent) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;
  DbOptions dopts;
  dopts.architecture = Architecture::kNoCacheNoSharding;
  dopts.cc.protocol = GetParam();
  DsmDb db(copts, dopts);
  ComputeNode* cn = db.AddComputeNode();
  workload::TpccOptions topts;
  topts.warehouses = 2;
  topts.customers_per_district = 20;
  topts.stock_per_wh = 100;
  Result<workload::TpccLite> tpcc = workload::TpccLite::Create(&db, topts);
  ASSERT_TRUE(tpcc.ok());
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  Random64 rng(17);
  int payments = 0;
  int64_t paid = 0;
  for (int i = 0; i < 60; i++) {
    if (i % 3 == 0) {
      Status s = tpcc->RunNewOrder(cn, rng);
      ASSERT_TRUE(s.ok() || s.IsAborted()) << s;
    } else {
      Status s = tpcc->RunPayment(cn, rng);
      ASSERT_TRUE(s.ok() || s.IsAborted()) << s;
      if (s.ok()) payments++;
    }
  }
  (void)paid;
  // Warehouse YTD total equals district YTD total minus the order-id
  // counters' initial contribution (district column mixes next_o_id and
  // ytd; both start at warehouse count * districts * 1).
  int64_t wh_total = 0;
  for (uint64_t w = 0; w < topts.warehouses; w++) {
    auto txn = *cn->Begin();
    std::string v;
    ASSERT_TRUE(txn->Read(tpcc->warehouse().RefFor(w), &v).ok());
    wh_total += static_cast<int64_t>(DecodeFixed64(v.data()));
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_GE(wh_total, 0);
  if (payments > 0) EXPECT_GT(wh_total, 0);
}

INSTANTIATE_TEST_SUITE_P(Protocols, TpccProtocolTest,
                         ::testing::Values(txn::CcProtocolKind::kTwoPlNoWait,
                                           txn::CcProtocolKind::kOcc,
                                           txn::CcProtocolKind::kTso),
                         [](const auto& info) {
                           return std::string(
                               txn::CcProtocolKindName(info.param) ==
                                       "2pl-nowait"
                                   ? "TwoPl"
                                   : txn::CcProtocolKindName(info.param) ==
                                             "occ"
                                         ? "Occ"
                                         : "Tso");
                         });

/// Full crash -> automated recovery round trip via core::RecoveryManager.
class RecoveryManagerTest
    : public ::testing::TestWithParam<core::DurabilityMode> {};

TEST_P(RecoveryManagerTest, RebuildsCrashedNodeFromDurableLog) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 3;
  copts.memory_node.capacity_bytes = 32 << 20;
  DbOptions dopts;
  dopts.architecture = Architecture::kNoCacheNoSharding;
  dopts.durability = GetParam();
  dopts.replicated_log.replication_factor = 2;
  DsmDb db(copts, dopts);
  ComputeNode* cn = db.AddComputeNode("cn0");
  const Table* t = *db.CreateTable("kv", {64, 45});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  std::string v(64, '\0');
  for (uint64_t k = 0; k < 45; k++) {
    EncodeFixed64(v.data(), k * 13 + 1);
    ASSERT_TRUE(cn->ExecuteOneShot(*t, {TxnOp::Write(k, v)})->committed);
  }

  db.cluster().CrashMemoryNode(1);
  Result<uint64_t> applied =
      core::RecoveryManager::RecoverMemoryNode(&db, 1);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_GT(*applied, 0u);

  for (uint64_t k = 0; k < 45; k++) {
    Result<core::TxnResult> r = cn->ExecuteOneShot(*t, {TxnOp::Read(k)});
    ASSERT_TRUE(r.ok() && r->committed) << k;
    EXPECT_EQ(DecodeFixed64(r->reads[0].data()), k * 13 + 1) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Durability, RecoveryManagerTest,
    ::testing::Values(core::DurabilityMode::kCloudWal,
                      core::DurabilityMode::kMemReplication),
    [](const auto& info) {
      return info.param == core::DurabilityMode::kCloudWal
                 ? "CloudWal"
                 : "MemReplication";
    });

TEST(RecoveryManagerTest2, RefusesWithoutDurability) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  DbOptions dopts;
  DsmDb db(copts, dopts);
  db.AddComputeNode();
  ASSERT_TRUE(db.CreateTable("kv", {64, 10}).ok());
  ASSERT_TRUE(db.FinishSetup().ok());
  db.cluster().CrashMemoryNode(0);
  EXPECT_TRUE(core::RecoveryManager::RecoverMemoryNode(&db, 0)
                  .status()
                  .IsNotSupported());
}

}  // namespace
}  // namespace dsmdb
