#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "buffer/arc.h"
#include "buffer/policy.h"
#include "common/random.h"

namespace dsmdb::buffer {
namespace {

// ---------------------------------------------------------------------------
// Behavioral tests per policy.
// ---------------------------------------------------------------------------

TEST(LruTest, EvictsLeastRecentlyUsed) {
  auto p = MakePolicy(PolicyKind::kLru, 3);
  EXPECT_FALSE(p->OnInsert(1).has_value());
  EXPECT_FALSE(p->OnInsert(2).has_value());
  EXPECT_FALSE(p->OnInsert(3).has_value());
  p->OnHit(1);  // 1 becomes MRU; 2 is now LRU
  auto victim = p->OnInsert(4);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
}

TEST(FifoTest, IgnoresHits) {
  auto p = MakePolicy(PolicyKind::kFifo, 3);
  p->OnInsert(1);
  p->OnInsert(2);
  p->OnInsert(3);
  p->OnHit(1);  // FIFO ignores recency
  auto victim = p->OnInsert(4);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);
}

TEST(ClockTest, SecondChanceForReferencedPages)
{
  auto p = MakePolicy(PolicyKind::kClock, 3);
  p->OnInsert(1);
  p->OnInsert(2);
  p->OnInsert(3);
  // All inserted with ref=1. Clear pass, then hit 1 and 3.
  p->OnHit(1);
  p->OnHit(3);
  // Inserting 4: hand sweeps, clears bits; some unreferenced page goes.
  auto victim = p->OnInsert(4);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(p->Size(), 3u);
}

TEST(LruKTest, ScanResistantEviction) {
  auto p = MakePolicy(PolicyKind::kLruK, 3);
  // 1 and 2 are accessed twice (real hot set); 3 is a one-shot scan page.
  p->OnInsert(1);
  p->OnHit(1);
  p->OnInsert(2);
  p->OnHit(2);
  p->OnInsert(3);
  auto victim = p->OnInsert(4);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 3u);  // the single-reference page dies first
}

TEST(TwoQTest, SecondReferenceWithinWindowPromotes) {
  auto p = MakePolicy(PolicyKind::kTwoQ, 8);
  // Fill A1in beyond its share so early pages fall into the ghost queue.
  for (uint64_t k = 1; k <= 12; k++) p->OnInsert(k);
  EXPECT_LE(p->Size(), 8u);
  // Re-reference a ghosted key: should be admitted to Am (promotion).
  const size_t before = p->Size();
  p->OnInsert(1);  // ghost hit path
  EXPECT_LE(p->Size(), 8u);
  EXPECT_GE(p->Size() + 1, before);
}

TEST(ArcTest, AdaptsAndStaysWithinCapacity) {
  ArcPolicy p(4);
  // Recency-heavy phase.
  for (uint64_t k = 0; k < 20; k++) p.OnInsert(k);
  EXPECT_LE(p.Size(), 4u);
  // Frequency-heavy phase: hammer a small set, then ghost-hit an old key.
  for (int round = 0; round < 3; round++) {
    for (uint64_t k = 0; k < 3; k++) {
      if (round == 0 && k >= p.Size()) break;
      p.OnHit(100 + k);
    }
    for (uint64_t k = 0; k < 3; k++) p.OnInsert(100 + k);
  }
  EXPECT_LE(p.Size(), 4u);
}

// ---------------------------------------------------------------------------
// Property tests across all policies.
// ---------------------------------------------------------------------------

class PolicyPropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyPropertyTest, NeverExceedsCapacityUnderRandomTraffic) {
  const size_t capacity = 16;
  auto policy = MakePolicy(GetParam(), capacity);
  std::set<uint64_t> resident;
  Random64 rng(2024);
  for (int i = 0; i < 20'000; i++) {
    const uint64_t key = rng.Uniform(100);
    if (resident.contains(key)) {
      policy->OnHit(key);
    } else {
      auto victim = policy->OnInsert(key);
      resident.insert(key);
      if (victim.has_value()) {
        EXPECT_TRUE(resident.contains(*victim))
            << PolicyKindName(GetParam()) << " evicted non-resident key";
        resident.erase(*victim);
      }
    }
    EXPECT_LE(resident.size(), capacity)
        << PolicyKindName(GetParam()) << " exceeded capacity";
    EXPECT_EQ(policy->Size(), resident.size());
  }
}

TEST_P(PolicyPropertyTest, EraseRemovesResidentKey) {
  auto policy = MakePolicy(GetParam(), 8);
  for (uint64_t k = 0; k < 8; k++) policy->OnInsert(k);
  policy->OnErase(3);
  EXPECT_EQ(policy->Size(), 7u);
  // Inserting a new key must not evict (we freed a slot).
  auto victim = policy->OnInsert(100);
  EXPECT_FALSE(victim.has_value());
  // Erasing an unknown key is a no-op.
  policy->OnErase(999);
  EXPECT_EQ(policy->Size(), 8u);
}

TEST_P(PolicyPropertyTest, EvictionVictimIsNeverTheNewKey) {
  auto policy = MakePolicy(GetParam(), 4);
  Random64 rng(9);
  std::set<uint64_t> resident;
  for (int i = 0; i < 5'000; i++) {
    const uint64_t key = rng.Uniform(64);
    if (resident.contains(key)) {
      policy->OnHit(key);
      continue;
    }
    auto victim = policy->OnInsert(key);
    resident.insert(key);
    if (victim.has_value()) {
      EXPECT_NE(*victim, key);
      resident.erase(*victim);
    }
  }
}

TEST_P(PolicyPropertyTest, HotKeysSurviveSkewedTraffic) {
  // Any sane policy should keep a tiny, constantly-hit working set
  // resident under heavy skew (FIFO excluded: it has no recency signal).
  if (GetParam() == PolicyKind::kFifo) GTEST_SKIP();
  const size_t capacity = 10;
  auto policy = MakePolicy(GetParam(), capacity);
  std::set<uint64_t> resident;
  Random64 rng(77);
  uint64_t hot_misses = 0, hot_accesses = 0;
  for (int i = 0; i < 50'000; i++) {
    // 90% of traffic on keys 0..2; the rest is a uniform scan.
    const bool hot = rng.Bernoulli(0.9);
    const uint64_t key = hot ? rng.Uniform(3) : 100 + rng.Uniform(10'000);
    if (hot) hot_accesses++;
    if (resident.contains(key)) {
      policy->OnHit(key);
    } else {
      if (hot && i > 1000) hot_misses++;
      auto victim = policy->OnInsert(key);
      resident.insert(key);
      if (victim.has_value()) resident.erase(*victim);
    }
  }
  EXPECT_LT(static_cast<double>(hot_misses),
            0.05 * static_cast<double>(hot_accesses))
      << PolicyKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyPropertyTest,
    ::testing::Values(PolicyKind::kFifo, PolicyKind::kLru,
                      PolicyKind::kLruK, PolicyKind::kTwoQ,
                      PolicyKind::kClock, PolicyKind::kArc),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      std::string name(PolicyKindName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dsmdb::buffer
