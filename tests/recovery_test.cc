#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "core/dsmdb.h"
#include "log/recovery.h"
#include "rdma/fault.h"
#include "storage/checkpoint.h"
#include "storage/erasure.h"
#include "txn/log_sink.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace dsmdb {
namespace {

using core::Architecture;
using core::ComputeNode;
using core::DbOptions;
using core::DsmDb;
using core::Table;
using core::TxnOp;

DbOptions BaseOptions(core::DurabilityMode durability) {
  DbOptions opts;
  opts.architecture = Architecture::kNoCacheNoSharding;
  opts.durability = durability;
  return opts;
}

dsm::ClusterOptions SmallCluster(uint32_t mem_nodes = 3) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = mem_nodes;
  copts.memory_node.capacity_bytes = 32 << 20;
  return copts;
}

std::string Val(uint64_t x) {
  std::string v(64, '\0');
  EncodeFixed64(v.data(), x);
  return v;
}

/// End-to-end Challenge #2 / #3 scenario, Approach #1 (cloud WAL):
/// commit transactions, crash a memory node (DRAM lost), recover the node,
/// and rebuild its records by replaying the durable WAL.
TEST(RecoveryE2eTest, CloudWalReplayRestoresCommittedData) {
  DsmDb db(SmallCluster(), BaseOptions(core::DurabilityMode::kCloudWal));
  ComputeNode* cn = db.AddComputeNode("cn0");
  const Table* t = *db.CreateTable("kv", {64, 30});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  for (uint64_t k = 0; k < 30; k++) {
    Result<core::TxnResult> r =
        cn->ExecuteOneShot(*t, {TxnOp::Write(k, Val(k * 11))});
    ASSERT_TRUE(r.ok() && r->committed);
  }

  // Crash memory node 1: every record striped there is gone.
  db.cluster().CrashMemoryNode(1);
  db.cluster().RecoverMemoryNode(1);
  db.admin().RefreshIncarnation(1);
  cn->dsm().RefreshIncarnation(1);
  // Rebuilt node must re-own the table stripe region. Re-create the stripe
  // allocation so addresses resolve (same logical layout as at create).
  // Table stripes are re-derived by re-running the allocation sequence:
  // here the original stripe was the node's first allocation, so a fresh
  // equal-sized allocation lands at the same offset.
  const uint64_t stripe_keys = t->KeysPerStripe(1);
  Result<dsm::GlobalAddress> stripe =
      db.admin().Alloc(stripe_keys * t->record_stride(), 1);
  ASSERT_TRUE(stripe.ok());
  EXPECT_EQ(stripe->offset, t->stripes()[1].offset)
      << "recovered stripe must reuse the logical address";

  // Replay the WAL into DSM.
  Result<std::string> image = db.cloud().ReadStream("wal/cn0");
  ASSERT_TRUE(image.ok());
  Result<uint64_t> applied = log::RedoRecovery::ReplayFromImage(
      *image, [&](const log::LogRecord& rec) {
        txn::CommitWrite w;
        ASSERT_TRUE(txn::DecodeCommitWrite(rec.payload, &w));
        if (w.addr.node != 1) return;  // only the crashed node's records
        ASSERT_TRUE(db.admin()
                        .Write(dsm::GlobalAddress{w.addr.node,
                                                  w.addr.offset + 16},
                               w.value.data(), w.value.size())
                        .ok());
      });
  ASSERT_TRUE(applied.ok());
  EXPECT_GT(*applied, 0u);

  // All 30 keys readable with committed values again.
  for (uint64_t k = 0; k < 30; k++) {
    Result<core::TxnResult> r = cn->ExecuteOneShot(*t, {TxnOp::Read(k)});
    ASSERT_TRUE(r.ok() && r->committed) << "key " << k;
    EXPECT_EQ(DecodeFixed64(r->reads[0].data()), k * 11) << "key " << k;
  }
}

/// Approach #2 (RAMCloud-style memory replication): the log itself
/// survives the crash inside the surviving replicas.
TEST(RecoveryE2eTest, ReplicatedLogSurvivesMemoryNodeCrash) {
  DbOptions opts = BaseOptions(core::DurabilityMode::kMemReplication);
  opts.replicated_log.replication_factor = 3;
  DsmDb db(SmallCluster(4), opts);
  ComputeNode* cn = db.AddComputeNode("cn0");
  const Table* t = *db.CreateTable("kv", {64, 40});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  for (uint64_t k = 0; k < 40; k++) {
    Result<core::TxnResult> r =
        cn->ExecuteOneShot(*t, {TxnOp::Write(k, Val(k + 7))});
    ASSERT_TRUE(r.ok() && r->committed);
  }

  // Crash one replica holder; the log must still be fully recoverable.
  db.cluster().CrashMemoryNode(2);
  Result<std::vector<log::LogRecord>> records =
      cn->replicated_log()->GatherLog();
  ASSERT_TRUE(records.ok()) << records.status();

  // Each commit record carries the txn's writes (length-prefixed).
  uint64_t writes_seen = 0;
  for (const log::LogRecord& rec : *records) {
    size_t pos = 0;
    std::string_view payload(rec.payload);
    std::string_view entry;
    while (GetLengthPrefixed(payload, &pos, &entry)) {
      txn::CommitWrite w;
      ASSERT_TRUE(txn::DecodeCommitWrite(entry, &w));
      writes_seen++;
    }
  }
  EXPECT_EQ(writes_seen, 40u);
}

/// Challenge #3, RAMCloud-style availability: checkpoint to cloud storage
/// + log replay after the checkpoint.
TEST(RecoveryE2eTest, CheckpointPlusLogTailRebuildsState) {
  storage::CloudStorage cloud;
  storage::Checkpointer ckpt(&cloud, "ckpt/mem1");

  // "Memory node state": a simple byte image.
  std::string state(4096, '\0');
  EncodeFixed64(state.data(), 1111);
  ASSERT_TRUE(ckpt.Write(state).ok());

  // Post-checkpoint log records modify the state.
  std::vector<log::LogRecord> records;
  log::LogRecord mark;
  mark.lsn = 1;
  mark.type = log::LogRecordType::kCheckpoint;
  records.push_back(mark);
  for (uint64_t i = 0; i < 5; i++) {
    log::LogRecord up;
    up.lsn = 2 + i;
    up.txn_id = 50 + i;
    up.type = log::LogRecordType::kUpdate;
    up.payload = std::string(8, '\0');
    EncodeFixed64(up.payload.data(), 2222 + i);
    records.push_back(up);
    log::LogRecord commit;
    commit.lsn = 100 + i;
    commit.txn_id = 50 + i;
    commit.type = log::LogRecordType::kCommit;
    records.push_back(commit);
  }

  // Recover: load checkpoint, then replay records after it.
  Result<storage::Checkpointer::Snapshot> snap = ckpt.ReadLatest();
  ASSERT_TRUE(snap.ok());
  std::string rebuilt = snap->bytes;
  Result<uint64_t> applied = log::RedoRecovery::Replay(
      records, [&](const log::LogRecord& rec) {
        EncodeFixed64(rebuilt.data(), DecodeFixed64(rec.payload.data()));
      });
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 5u);
  EXPECT_EQ(DecodeFixed64(rebuilt.data()), 2226u);  // last update wins
}

/// Challenge #3 erasure-coded availability over real memory nodes: shard a
/// page across nodes + parity, crash one node, reconstruct.
TEST(RecoveryE2eTest, ErasureCodedPageSurvivesOneNodeLoss) {
  dsm::ClusterOptions copts = SmallCluster(4);
  dsm::Cluster cluster(copts);
  dsm::DsmClient client(&cluster, cluster.AddComputeNode("cn0"));
  SimClock::Reset();

  // Page content split into 3 data shards + 1 parity on 4 nodes.
  std::string page(3 * 1024, '\0');
  for (size_t i = 0; i < page.size(); i++) {
    page[i] = static_cast<char>(i * 31);
  }
  const auto shards = storage::XorErasure::Split(page, 3);
  Result<std::string> parity = storage::XorErasure::EncodeParity(shards);
  ASSERT_TRUE(parity.ok());

  std::vector<dsm::GlobalAddress> locs;
  for (uint32_t i = 0; i < 3; i++) {
    dsm::GlobalAddress a =
        *client.Alloc(shards[i].size(), static_cast<dsm::MemNodeId>(i));
    ASSERT_TRUE(client.Write(a, shards[i].data(), shards[i].size()).ok());
    locs.push_back(a);
  }
  dsm::GlobalAddress ploc = *client.Alloc(parity->size(), 3);
  ASSERT_TRUE(client.Write(ploc, parity->data(), parity->size()).ok());

  cluster.CrashMemoryNode(1);  // lose shard 1

  // Reconstruct from surviving shards + parity.
  std::vector<std::string> surviving;
  for (uint32_t i = 0; i < 3; i++) {
    if (i == 1) continue;
    std::string s(shards[i].size(), '\0');
    ASSERT_TRUE(client.Read(locs[i], s.data(), s.size()).ok());
    surviving.push_back(std::move(s));
  }
  std::string p(parity->size(), '\0');
  ASSERT_TRUE(client.Read(ploc, p.data(), p.size()).ok());
  Result<std::string> rebuilt =
      storage::XorErasure::Reconstruct(surviving, p);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, shards[1]);
}

// ---------------------------------------------------------------------------
// Chaos: a memory node dies mid-transaction, under every CC protocol and at
// cooperative depths 1 and 8. The contract is *clean failure*: every attempt
// finishes as a commit, a protocol abort, or an abort-grade error — never a
// hang, a wedged lane, or a crash in the abort path (partially acquired
// locks against the dead node must release-or-skip idempotently).
// ---------------------------------------------------------------------------

struct CrashParam {
  std::string name;
  txn::CcOptions cc;
  uint32_t depth;
};

std::vector<CrashParam> AllProtocolCrashParams() {
  struct Proto {
    const char* name;
    txn::CcProtocolKind kind;
    txn::TwoPlLockMode mode;
  };
  const Proto kProtos[] = {
      {"TwoPlNoWait", txn::CcProtocolKind::kTwoPlNoWait,
       txn::TwoPlLockMode::kExclusiveOnly},
      {"TwoPlNoWaitSharedEx", txn::CcProtocolKind::kTwoPlNoWait,
       txn::TwoPlLockMode::kSharedExclusive},
      {"TwoPlWaitDie", txn::CcProtocolKind::kTwoPlWaitDie,
       txn::TwoPlLockMode::kExclusiveOnly},
      {"Occ", txn::CcProtocolKind::kOcc, txn::TwoPlLockMode::kExclusiveOnly},
      {"Tso", txn::CcProtocolKind::kTso, txn::TwoPlLockMode::kExclusiveOnly},
      {"Mvcc", txn::CcProtocolKind::kMvcc, txn::TwoPlLockMode::kExclusiveOnly},
  };
  std::vector<CrashParam> out;
  for (const Proto& p : kProtos) {
    for (uint32_t depth : {1u, 8u}) {
      txn::CcOptions cc;
      cc.protocol = p.kind;
      cc.lock_mode = p.mode;
      out.push_back({std::string(p.name) + "Depth" + std::to_string(depth),
                     cc, depth});
    }
  }
  return out;
}

class ChaosMidTxnCrashTest : public ::testing::TestWithParam<CrashParam> {};

TEST_P(ChaosMidTxnCrashTest, CleanAbortsWhenMemoryNodeDiesMidRun) {
  const CrashParam& param = GetParam();
  DbOptions dopts;
  dopts.architecture = Architecture::kNoCacheNoSharding;
  dopts.cc = param.cc;
  DsmDb db(SmallCluster(3), dopts);
  std::vector<ComputeNode*> nodes = {db.AddComputeNode("cn0")};
  const Table* table = *db.CreateTable("ycsb", {64, 2'048});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  // One fault event: memory node 1 dies once transactions are in flight
  // (its stripe of the table is lost; ops against it start failing).
  rdma::FaultOptions fopts;
  fopts.events.push_back(rdma::FaultEvent{
      100'000, [&db] { db.cluster().CrashMemoryNode(1); }, "crash-mem1"});
  rdma::FaultInjector injector(std::move(fopts));
  db.cluster().fabric().SetFaultInjector(&injector);

  workload::DriverOptions opts;
  opts.threads_per_node = 2;
  opts.txns_per_thread = 120;
  opts.in_flight_depth = param.depth;
  workload::YcsbOptions yopts;
  yopts.num_keys = 2'048;
  yopts.write_fraction = 0.3;
  yopts.zipf_theta = 0.7;

  std::atomic<uint64_t> hard_errors{0};
  workload::DriverResult result = workload::RunDriver(
      nodes, opts,
      [&](ComputeNode* node, uint32_t lane, Random64&) {
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        if (!wl) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, lane + 1);
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*table, wl->NextTxn());
        if (!r.ok()) {
          EXPECT_TRUE(r.status().IsUnavailable() || r.status().IsTimedOut() ||
                      r.status().IsStaleIncarnation() ||
                      r.status().IsAborted())
              << "not an abort-grade failure: " << r.status();
          hard_errors.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        return r->committed;
      });
  db.cluster().fabric().SetFaultInjector(nullptr);

  // Every lane drained its full attempt budget: no hung worker, no
  // permanently parked lane, no leaked scheduler task (RunDriver joins).
  EXPECT_EQ(result.attempts, 2u * 120u);
  EXPECT_TRUE(injector.AllEventsFired()) << "crash landed after the run";
  EXPECT_GT(result.committed, 0u) << "no progress before the crash";
  EXPECT_GT(hard_errors.load() + (result.attempts - result.committed), 0u)
      << "the crash was free — event fired too late to matter";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ChaosMidTxnCrashTest,
    ::testing::ValuesIn(AllProtocolCrashParams()),
    [](const ::testing::TestParamInfo<CrashParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dsmdb
