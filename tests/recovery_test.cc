#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/sim_clock.h"
#include "core/dsmdb.h"
#include "log/recovery.h"
#include "storage/checkpoint.h"
#include "storage/erasure.h"
#include "txn/log_sink.h"

namespace dsmdb {
namespace {

using core::Architecture;
using core::ComputeNode;
using core::DbOptions;
using core::DsmDb;
using core::Table;
using core::TxnOp;

DbOptions BaseOptions(core::DurabilityMode durability) {
  DbOptions opts;
  opts.architecture = Architecture::kNoCacheNoSharding;
  opts.durability = durability;
  return opts;
}

dsm::ClusterOptions SmallCluster(uint32_t mem_nodes = 3) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = mem_nodes;
  copts.memory_node.capacity_bytes = 32 << 20;
  return copts;
}

std::string Val(uint64_t x) {
  std::string v(64, '\0');
  EncodeFixed64(v.data(), x);
  return v;
}

/// End-to-end Challenge #2 / #3 scenario, Approach #1 (cloud WAL):
/// commit transactions, crash a memory node (DRAM lost), recover the node,
/// and rebuild its records by replaying the durable WAL.
TEST(RecoveryE2eTest, CloudWalReplayRestoresCommittedData) {
  DsmDb db(SmallCluster(), BaseOptions(core::DurabilityMode::kCloudWal));
  ComputeNode* cn = db.AddComputeNode("cn0");
  const Table* t = *db.CreateTable("kv", {64, 30});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  for (uint64_t k = 0; k < 30; k++) {
    Result<core::TxnResult> r =
        cn->ExecuteOneShot(*t, {TxnOp::Write(k, Val(k * 11))});
    ASSERT_TRUE(r.ok() && r->committed);
  }

  // Crash memory node 1: every record striped there is gone.
  db.cluster().CrashMemoryNode(1);
  db.cluster().RecoverMemoryNode(1);
  // Rebuilt node must re-own the table stripe region. Re-create the stripe
  // allocation so addresses resolve (same logical layout as at create).
  // Table stripes are re-derived by re-running the allocation sequence:
  // here the original stripe was the node's first allocation, so a fresh
  // equal-sized allocation lands at the same offset.
  const uint64_t stripe_keys = t->KeysPerStripe(1);
  Result<dsm::GlobalAddress> stripe =
      db.admin().Alloc(stripe_keys * t->record_stride(), 1);
  ASSERT_TRUE(stripe.ok());
  EXPECT_EQ(stripe->offset, t->stripes()[1].offset)
      << "recovered stripe must reuse the logical address";

  // Replay the WAL into DSM.
  Result<std::string> image = db.cloud().ReadStream("wal/cn0");
  ASSERT_TRUE(image.ok());
  Result<uint64_t> applied = log::RedoRecovery::ReplayFromImage(
      *image, [&](const log::LogRecord& rec) {
        txn::CommitWrite w;
        ASSERT_TRUE(txn::DecodeCommitWrite(rec.payload, &w));
        if (w.addr.node != 1) return;  // only the crashed node's records
        ASSERT_TRUE(db.admin()
                        .Write(dsm::GlobalAddress{w.addr.node,
                                                  w.addr.offset + 16},
                               w.value.data(), w.value.size())
                        .ok());
      });
  ASSERT_TRUE(applied.ok());
  EXPECT_GT(*applied, 0u);

  // All 30 keys readable with committed values again.
  for (uint64_t k = 0; k < 30; k++) {
    Result<core::TxnResult> r = cn->ExecuteOneShot(*t, {TxnOp::Read(k)});
    ASSERT_TRUE(r.ok() && r->committed) << "key " << k;
    EXPECT_EQ(DecodeFixed64(r->reads[0].data()), k * 11) << "key " << k;
  }
}

/// Approach #2 (RAMCloud-style memory replication): the log itself
/// survives the crash inside the surviving replicas.
TEST(RecoveryE2eTest, ReplicatedLogSurvivesMemoryNodeCrash) {
  DbOptions opts = BaseOptions(core::DurabilityMode::kMemReplication);
  opts.replicated_log.replication_factor = 3;
  DsmDb db(SmallCluster(4), opts);
  ComputeNode* cn = db.AddComputeNode("cn0");
  const Table* t = *db.CreateTable("kv", {64, 40});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  for (uint64_t k = 0; k < 40; k++) {
    Result<core::TxnResult> r =
        cn->ExecuteOneShot(*t, {TxnOp::Write(k, Val(k + 7))});
    ASSERT_TRUE(r.ok() && r->committed);
  }

  // Crash one replica holder; the log must still be fully recoverable.
  db.cluster().CrashMemoryNode(2);
  Result<std::vector<log::LogRecord>> records =
      cn->replicated_log()->GatherLog();
  ASSERT_TRUE(records.ok()) << records.status();

  // Each commit record carries the txn's writes (length-prefixed).
  uint64_t writes_seen = 0;
  for (const log::LogRecord& rec : *records) {
    size_t pos = 0;
    std::string_view payload(rec.payload);
    std::string_view entry;
    while (GetLengthPrefixed(payload, &pos, &entry)) {
      txn::CommitWrite w;
      ASSERT_TRUE(txn::DecodeCommitWrite(entry, &w));
      writes_seen++;
    }
  }
  EXPECT_EQ(writes_seen, 40u);
}

/// Challenge #3, RAMCloud-style availability: checkpoint to cloud storage
/// + log replay after the checkpoint.
TEST(RecoveryE2eTest, CheckpointPlusLogTailRebuildsState) {
  storage::CloudStorage cloud;
  storage::Checkpointer ckpt(&cloud, "ckpt/mem1");

  // "Memory node state": a simple byte image.
  std::string state(4096, '\0');
  EncodeFixed64(state.data(), 1111);
  ASSERT_TRUE(ckpt.Write(state).ok());

  // Post-checkpoint log records modify the state.
  std::vector<log::LogRecord> records;
  log::LogRecord mark;
  mark.lsn = 1;
  mark.type = log::LogRecordType::kCheckpoint;
  records.push_back(mark);
  for (uint64_t i = 0; i < 5; i++) {
    log::LogRecord up;
    up.lsn = 2 + i;
    up.txn_id = 50 + i;
    up.type = log::LogRecordType::kUpdate;
    up.payload = std::string(8, '\0');
    EncodeFixed64(up.payload.data(), 2222 + i);
    records.push_back(up);
    log::LogRecord commit;
    commit.lsn = 100 + i;
    commit.txn_id = 50 + i;
    commit.type = log::LogRecordType::kCommit;
    records.push_back(commit);
  }

  // Recover: load checkpoint, then replay records after it.
  Result<storage::Checkpointer::Snapshot> snap = ckpt.ReadLatest();
  ASSERT_TRUE(snap.ok());
  std::string rebuilt = snap->bytes;
  Result<uint64_t> applied = log::RedoRecovery::Replay(
      records, [&](const log::LogRecord& rec) {
        EncodeFixed64(rebuilt.data(), DecodeFixed64(rec.payload.data()));
      });
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 5u);
  EXPECT_EQ(DecodeFixed64(rebuilt.data()), 2226u);  // last update wins
}

/// Challenge #3 erasure-coded availability over real memory nodes: shard a
/// page across nodes + parity, crash one node, reconstruct.
TEST(RecoveryE2eTest, ErasureCodedPageSurvivesOneNodeLoss) {
  dsm::ClusterOptions copts = SmallCluster(4);
  dsm::Cluster cluster(copts);
  dsm::DsmClient client(&cluster, cluster.AddComputeNode("cn0"));
  SimClock::Reset();

  // Page content split into 3 data shards + 1 parity on 4 nodes.
  std::string page(3 * 1024, '\0');
  for (size_t i = 0; i < page.size(); i++) {
    page[i] = static_cast<char>(i * 31);
  }
  const auto shards = storage::XorErasure::Split(page, 3);
  Result<std::string> parity = storage::XorErasure::EncodeParity(shards);
  ASSERT_TRUE(parity.ok());

  std::vector<dsm::GlobalAddress> locs;
  for (uint32_t i = 0; i < 3; i++) {
    dsm::GlobalAddress a =
        *client.Alloc(shards[i].size(), static_cast<dsm::MemNodeId>(i));
    ASSERT_TRUE(client.Write(a, shards[i].data(), shards[i].size()).ok());
    locs.push_back(a);
  }
  dsm::GlobalAddress ploc = *client.Alloc(parity->size(), 3);
  ASSERT_TRUE(client.Write(ploc, parity->data(), parity->size()).ok());

  cluster.CrashMemoryNode(1);  // lose shard 1

  // Reconstruct from surviving shards + parity.
  std::vector<std::string> surviving;
  for (uint32_t i = 0; i < 3; i++) {
    if (i == 1) continue;
    std::string s(shards[i].size(), '\0');
    ASSERT_TRUE(client.Read(locs[i], s.data(), s.size()).ok());
    surviving.push_back(std::move(s));
  }
  std::string p(parity->size(), '\0');
  ASSERT_TRUE(client.Read(ploc, p.data(), p.size()).ok());
  Result<std::string> rebuilt =
      storage::XorErasure::Reconstruct(surviving, p);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, shards[1]);
}

}  // namespace
}  // namespace dsmdb
