#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "buffer/buffer_pool.h"
#include "buffer/coherence.h"
#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "dsm/rpc_ids.h"

namespace dsmdb::buffer {
namespace {

/// Two compute nodes with caching but no sharding (Figure 3b): the
/// software coherence protocol must keep their pools consistent.
class CoherenceTest : public ::testing::TestWithParam<bool /*update*/> {
 protected:
  struct Node {
    std::unique_ptr<dsm::DsmClient> client;
    std::unique_ptr<DirectoryCoherence> coherence;
    std::unique_ptr<BufferPool> pool;
  };

  CoherenceTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    for (int i = 0; i < 2; i++) {
      auto node = std::make_unique<Node>();
      const rdma::NodeId fid =
          cluster_->AddComputeNode("cn" + std::to_string(i));
      node->client = std::make_unique<dsm::DsmClient>(cluster_.get(), fid);
      node->coherence = std::make_unique<DirectoryCoherence>(
          node->client.get(), /*update_based=*/GetParam());
      BufferPoolOptions opts;
      opts.capacity_bytes = 64 * 4096;
      opts.shards = 2;
      opts.charge_policy_overhead = false;
      node->pool = std::make_unique<BufferPool>(node->client.get(), opts,
                                                node->coherence.get());
      BufferPool* pool = node->pool.get();
      cluster_->fabric().RegisterRpcHandler(
          fid, dsm::kSvcInvalidate,
          [pool](std::string_view req, std::string* resp) -> uint64_t {
            (void)resp;
            return pool->HandleCoherenceRpc(req);
          });
      nodes_.push_back(std::move(node));
    }
    addr_ = *nodes_[0]->client->Alloc(4096, 0);
    SimClock::Reset();
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::vector<std::unique_ptr<Node>> nodes_;
  dsm::GlobalAddress addr_;
};

TEST_P(CoherenceTest, PeerSeesFreshValueAfterWrite) {
  uint64_t out = 0;
  // Both nodes cache the page.
  ASSERT_TRUE(nodes_[0]->pool->Read(addr_, &out, 8).ok());
  ASSERT_TRUE(nodes_[1]->pool->Read(addr_, &out, 8).ok());
  EXPECT_EQ(out, 0u);

  // Node 0 writes; the directory notifies node 1.
  const uint64_t v = 987654;
  ASSERT_TRUE(nodes_[0]->pool->Write(addr_, &v, 8).ok());

  // Node 1 must observe the new value through its own pool.
  ASSERT_TRUE(nodes_[1]->pool->Read(addr_, &out, 8).ok());
  EXPECT_EQ(out, 987654u);

  const BufferPoolStats s1 = nodes_[1]->pool->Snapshot();
  if (GetParam()) {
    // Update-based: the peer's copy was patched in place (no extra miss).
    EXPECT_EQ(s1.updates_received, 1u);
    EXPECT_EQ(s1.misses, 1u);
  } else {
    // Invalidation-based: the peer dropped the page and re-fetched.
    EXPECT_EQ(s1.invalidations_received, 1u);
    EXPECT_EQ(s1.misses, 2u);
  }
}

TEST_P(CoherenceTest, WriterPaysForPeerNotification) {
  uint64_t out = 0;
  ASSERT_TRUE(nodes_[1]->pool->Read(addr_, &out, 8).ok());  // peer caches
  SimClock::Reset();
  const uint64_t v = 1;
  ASSERT_TRUE(nodes_[0]->pool->Write(addr_, &v, 8).ok());
  const uint64_t with_sharer_ns = SimClock::Now();

  if (!GetParam()) {
    // Invalidation mode: the first write already removed the peer from
    // the sharer set, so the second write sends nothing.
  } else {
    // Update mode keeps the peer registered; evict its copy explicitly.
    nodes_[1]->pool->Invalidate(nodes_[1]->pool->PageBase(addr_));
    nodes_[1]->coherence->OnCacheEvict(nodes_[1]->pool->PageBase(addr_));
  }
  SimClock::Reset();
  const uint64_t v2 = 2;
  ASSERT_TRUE(nodes_[0]->pool->Write(addr_, &v2, 8).ok());
  const uint64_t without_sharer_ns = SimClock::Now();
  EXPECT_GT(with_sharer_ns, without_sharer_ns);
}

TEST_P(CoherenceTest, EvictionUnregistersSharer) {
  // Tiny pool on node 1 so the page is evicted immediately.
  BufferPoolOptions small;
  small.capacity_bytes = 4096;
  small.page_size = 4096;
  small.shards = 1;
  small.charge_policy_overhead = false;
  BufferPool tiny(nodes_[1]->client.get(), small,
                  nodes_[1]->coherence.get());
  uint64_t out;
  ASSERT_TRUE(tiny.Read(addr_, &out, 8).ok());
  dsm::GlobalAddress other = *nodes_[0]->client->Alloc(4096, 0);
  ASSERT_TRUE(tiny.Read(other, &out, 8).ok());  // evicts addr_ page

  // Directory should no longer list node 1 for addr_'s page.
  const auto sharers =
      cluster_->memory_node(0)->directory().Sharers(
          tiny.PageBase(addr_).Pack());
  for (uint32_t s : sharers) {
    EXPECT_NE(s, nodes_[1]->client->self());
  }
}

TEST_P(CoherenceTest, ConcurrentWritersConverge) {
  // Both nodes cache, then write different words of the same page
  // concurrently; afterwards each node's cached copy must match DSM.
  uint64_t out;
  ASSERT_TRUE(nodes_[0]->pool->Read(addr_, &out, 8).ok());
  ASSERT_TRUE(nodes_[1]->pool->Read(addr_, &out, 8).ok());

  std::thread t0([&] {
    for (uint64_t i = 1; i <= 100; i++) {
      ASSERT_TRUE(nodes_[0]->pool->Write(addr_, &i, 8).ok());
    }
  });
  std::thread t1([&] {
    for (uint64_t i = 1; i <= 100; i++) {
      ASSERT_TRUE(nodes_[1]->pool->Write(addr_.Plus(512), &i, 8).ok());
    }
  });
  t0.join();
  t1.join();

  uint64_t remote0 = 0, remote512 = 0;
  ASSERT_TRUE(nodes_[0]->client->Read(addr_, &remote0, 8).ok());
  ASSERT_TRUE(nodes_[0]->client->Read(addr_.Plus(512), &remote512, 8).ok());
  EXPECT_EQ(remote0, 100u);
  EXPECT_EQ(remote512, 100u);
  // Each pool read now returns DSM truth.
  ASSERT_TRUE(nodes_[0]->pool->Read(addr_.Plus(512), &out, 8).ok());
  EXPECT_EQ(out, 100u);
  ASSERT_TRUE(nodes_[1]->pool->Read(addr_, &out, 8).ok());
  EXPECT_EQ(out, 100u);
}

// Regression: an eviction's deferred OnCacheEvict races a concurrent miss
// re-caching the same page. If the miss's directory registration lands
// before the evictor's deregistration, the refilled copy must still end up
// registered — otherwise later writers' notifications skip this node and
// its cached page goes permanently stale.
TEST_P(CoherenceTest, EvictRefillRaceKeepsSharerRegistered) {
  // One-page pool on node 1 so every read of the second page evicts the
  // first; its invalidation handler must route to this pool.
  BufferPoolOptions small;
  small.capacity_bytes = 4096;
  small.page_size = 4096;
  small.shards = 1;
  small.charge_policy_overhead = false;
  BufferPool tiny(nodes_[1]->client.get(), small,
                  nodes_[1]->coherence.get());
  BufferPool* tptr = &tiny;
  cluster_->fabric().RegisterRpcHandler(
      nodes_[1]->client->self(), dsm::kSvcInvalidate,
      [tptr](std::string_view req, std::string* resp) -> uint64_t {
        (void)resp;
        return tptr->HandleCoherenceRpc(req);
      });
  const dsm::GlobalAddress churn = *nodes_[0]->client->Alloc(4096, 0);

  constexpr int kRounds = 30;
  constexpr int kOpsPerRound = 25;
  for (int r = 0; r < kRounds; r++) {
    std::thread evictor([&] {
      uint64_t out;
      for (int i = 0; i < kOpsPerRound; i++) {
        EXPECT_TRUE(tiny.Read(churn, &out, 8).ok());
        EXPECT_TRUE(tiny.Read(addr_, &out, 8).ok());
      }
    });
    std::thread refiller([&] {
      uint64_t out;
      for (int i = 0; i < kOpsPerRound; i++) {
        EXPECT_TRUE(tiny.Read(addr_, &out, 8).ok());
      }
    });
    std::thread writer([&, r] {
      for (int i = 0; i < kOpsPerRound; i++) {
        const uint64_t v =
            static_cast<uint64_t>(r) * kOpsPerRound + i + 1;
        EXPECT_TRUE(nodes_[0]->pool->Write(addr_, &v, 8).ok());
      }
    });
    evictor.join();
    refiller.join();
    writer.join();

    // Quiesced: this write's notification must reach node 1's copy (drop
    // or patch it); a deregistered-but-cached copy would keep serving the
    // old value forever.
    const uint64_t sentinel = 1000000u + static_cast<uint64_t>(r);
    ASSERT_TRUE(nodes_[0]->pool->Write(addr_, &sentinel, 8).ok());
    uint64_t out = 0;
    ASSERT_TRUE(tiny.Read(addr_, &out, 8).ok());
    ASSERT_EQ(out, sentinel)
        << "cached page went stale after the evict/refill race (round " << r
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(InvalidateAndUpdate, CoherenceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "update" : "invalidate";
                         });

}  // namespace
}  // namespace dsmdb::buffer
