#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "index/race_hash.h"

namespace dsmdb::index {
namespace {

class RaceHashTest : public ::testing::Test {
 protected:
  RaceHashTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 64 << 20;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    base_ = *RaceHash::Create(client_.get(), 4'096);
    hash_ = std::make_unique<RaceHash>(client_.get(), base_, 4'096);
    SimClock::Reset();
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
  dsm::GlobalAddress base_;
  std::unique_ptr<RaceHash> hash_;
};

TEST_F(RaceHashTest, InsertGetRoundTrip) {
  ASSERT_TRUE(hash_->Insert(42, 4200).ok());
  Result<uint64_t> v = hash_->Get(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 4200u);
  EXPECT_TRUE(hash_->Get(43).status().IsNotFound());
}

TEST_F(RaceHashTest, DuplicateInsertRejected) {
  ASSERT_TRUE(hash_->Insert(7, 70).ok());
  EXPECT_TRUE(hash_->Insert(7, 71).IsAlreadyExists());
  EXPECT_EQ(*hash_->Get(7), 70u);
}

TEST_F(RaceHashTest, ZeroKeyOrValueRejected) {
  EXPECT_TRUE(hash_->Insert(0, 1).IsInvalidArgument());
  EXPECT_TRUE(hash_->Insert(1, 0).IsInvalidArgument());
}

TEST_F(RaceHashTest, UpdateChangesValue) {
  ASSERT_TRUE(hash_->Insert(9, 90).ok());
  ASSERT_TRUE(hash_->Update(9, 91).ok());
  EXPECT_EQ(*hash_->Get(9), 91u);
  EXPECT_TRUE(hash_->Update(10, 1).IsNotFound());
}

TEST_F(RaceHashTest, DeleteFreesSlot) {
  ASSERT_TRUE(hash_->Insert(11, 110).ok());
  ASSERT_TRUE(hash_->Delete(11).ok());
  EXPECT_TRUE(hash_->Get(11).status().IsNotFound());
  EXPECT_TRUE(hash_->Delete(11).IsNotFound());
  // The slot is reusable.
  ASSERT_TRUE(hash_->Insert(11, 111).ok());
  EXPECT_EQ(*hash_->Get(11), 111u);
}

TEST_F(RaceHashTest, ManyKeys) {
  std::map<uint64_t, uint64_t> expected;
  Random64 rng(21);
  while (expected.size() < 10'000) {
    const uint64_t key = rng.Next() | 1;
    if (expected.contains(key)) continue;
    expected[key] = key ^ 0xFF;
    ASSERT_TRUE(hash_->Insert(key, key ^ 0xFF).ok());
  }
  for (const auto& [k, v] : expected) {
    ASSERT_EQ(*hash_->Get(k), v);
  }
}

TEST_F(RaceHashTest, GetUsesOneDoorbellBatch) {
  ASSERT_TRUE(hash_->Insert(77, 770).ok());
  cluster_->fabric().ResetStats();
  ASSERT_TRUE(hash_->Get(77).ok());
  const auto stats = cluster_->fabric().TotalStats();
  // RACE's point: a lookup reads both candidate buckets in one RTT.
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.RoundTrips(), 1u);
}

TEST_F(RaceHashTest, FullTableReportsOutOfMemory) {
  // A 1-bucket table (rounds to power of two = 1): both candidate buckets
  // coincide; 8 slots fill up.
  dsm::GlobalAddress tiny_base = *RaceHash::Create(client_.get(), 1);
  RaceHash tiny(client_.get(), tiny_base, 1);
  uint32_t inserted = 0;
  Status last = Status::OK();
  for (uint64_t k = 1; k <= 20; k++) {
    Status s = tiny.Insert(k, k);
    if (s.ok()) {
      inserted++;
    } else {
      last = s;
      break;
    }
  }
  EXPECT_EQ(inserted, RaceHash::kSlotsPerBucket);
  EXPECT_TRUE(last.IsOutOfMemory());
}

TEST_F(RaceHashTest, ConcurrentInsertersNeverLoseKeys) {
  ParallelFor(8, [&](size_t t) {
    SimClock::Reset();
    for (uint64_t i = 0; i < 300; i++) {
      const uint64_t key = t * 100'000 + i + 1;
      ASSERT_TRUE(hash_->Insert(key, key * 2).ok());
    }
  });
  for (size_t t = 0; t < 8; t++) {
    for (uint64_t i = 0; i < 300; i++) {
      const uint64_t key = t * 100'000 + i + 1;
      ASSERT_EQ(*hash_->Get(key), key * 2);
    }
  }
}

TEST_F(RaceHashTest, ConcurrentSameSlotRaceElectsOneWinner) {
  // All threads try to insert the same key: exactly one must win.
  std::atomic<int> winners{0};
  ParallelFor(8, [&](size_t) {
    SimClock::Reset();
    Status s = hash_->Insert(555, 5550);
    if (s.ok()) winners++;
  });
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(*hash_->Get(555), 5550u);
}

TEST_F(RaceHashTest, SharedAcrossComputeNodes) {
  dsm::DsmClient client2(cluster_.get(), cluster_->AddComputeNode("cn1"));
  RaceHash hash2(&client2, base_, 4'096);
  ASSERT_TRUE(hash_->Insert(1234, 1).ok());
  EXPECT_EQ(*hash2.Get(1234), 1u);
  ASSERT_TRUE(hash2.Insert(4321, 2).ok());
  EXPECT_EQ(*hash_->Get(4321), 2u);
}

}  // namespace
}  // namespace dsmdb::index
