#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "obs/obs_config.h"
#include "obs/stats_exporter.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace dsmdb::obs {
namespace {

// --- Minimal JSON parser (validation only) ----------------------------------
// Enough of RFC 8259 to prove the Chrome trace export is well-formed:
// objects, arrays, strings with escapes, numbers, true/false/null.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    pos_++;  // '{'
    SkipWs();
    if (Peek() == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      pos_++;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    pos_++;  // '['
    SkipWs();
    if (Peek() == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    pos_++;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        pos_++;
        if (pos_ >= s_.size()) return false;
      }
      pos_++;
    }
    if (pos_ >= s_.size()) return false;
    pos_++;  // closing '"'
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') pos_++;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      pos_++;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const std::string want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      pos_++;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// --- Tracing -----------------------------------------------------------------

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimClock::Reset();
    TraceCollector::Instance().Clear();
    ObsConfig::SetTracing(true);
  }
  void TearDown() override {
    ObsConfig::SetTracing(false);
    TraceCollector::Instance().Clear();
    SimClock::Reset();
  }

  static std::vector<TraceEvent> EventsNamed(const char* name) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e :
         TraceCollector::Instance().Snapshot()) {
      if (std::string(e.name) == name) out.push_back(e);
    }
    return out;
  }
};

TEST_F(TracingTest, SpanNestingIsContained) {
  {
    TraceScope outer("obs_test.outer", "test");
    SimClock::Advance(100);
    {
      TraceScope inner("obs_test.inner", "test");
      SimClock::Advance(50);
    }
    SimClock::Advance(25);
  }
  const auto outer = EventsNamed("obs_test.outer");
  const auto inner = EventsNamed("obs_test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].dur_ns, 175u);
  EXPECT_EQ(inner[0].dur_ns, 50u);
  // Inner is contained in outer, on the same thread.
  EXPECT_EQ(inner[0].tid, outer[0].tid);
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
}

TEST_F(TracingTest, DisabledTracingEmitsNothing) {
  ObsConfig::SetTracing(false);
  {
    TraceScope span("obs_test.invisible", "test");
    SimClock::Advance(10);
  }
  EXPECT_TRUE(EventsNamed("obs_test.invisible").empty());
}

TEST_F(TracingTest, RingBufferWraparoundKeepsNewest) {
  TraceCollector& tc = TraceCollector::Instance();
  tc.SetBufferCapacity(8);
  // Capacity applies to buffers created after the call, so emit from a
  // fresh thread.
  std::thread t([] {
    SimClock::Reset();
    for (int i = 0; i < 20; i++) {
      SimClock::Advance(10);
      TraceScope span("obs_test.wrap", "test");
      SimClock::Advance(1);
    }
  });
  t.join();
  tc.SetBufferCapacity(64 * 1024);

  const auto events = EventsNamed("obs_test.wrap");
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tc.dropped(), 12u);
  // The retained 8 are the newest, oldest-first.
  for (size_t i = 1; i < events.size(); i++) {
    EXPECT_GT(events[i].start_ns, events[i - 1].start_ns);
  }
  // Event k (0-based) starts at 10*(k+1) + k; the survivors are k=12..19.
  EXPECT_EQ(events.front().start_ns, 10u * 13 + 12);
}

TEST_F(TracingTest, ChromeJsonParsesBack) {
  {
    TraceScope a("obs_test.json_a", "test");
    SimClock::Advance(5);
    TraceScope b("obs_test.json_b", "test");
    SimClock::Advance(7);
  }
  const std::string json = TraceCollector::Instance().ToChromeJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_a\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- StatsExporter -----------------------------------------------------------

TEST(StatsExporterTest, MergeSemantics) {
  StatsExporter e;
  // Counters ADD.
  e.AddCounter("c", 3);
  e.AddCounter("c", 4);
  // Scalars OVERWRITE.
  e.AddScalar("s", 1.5);
  e.AddScalar("s", 2.5);
  // Histograms MERGE.
  Histogram h1, h2;
  h1.Add(10);
  h2.Add(1000);
  e.AddHistogram("h", h1);
  e.AddHistogram("h", h2);

  const std::string json = e.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"c\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":10"), std::string::npos) << json;

  const std::string text = e.ToText();
  EXPECT_NE(text.find('c'), std::string::npos);
}

TEST(StatsExporterTest, EmptyExporterIsValidJson) {
  StatsExporter e;
  EXPECT_TRUE(e.empty());
  const std::string json = e.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
}

TEST(StatsExporterTest, CollectGlobalSeesTelemetryAndRegistry) {
  Telemetry::Instance().Reset();
  ObsConfig::SetEnabled(true);
  GlobalMetrics().GetCounter("obs_test.counter")->Add(11);
  Telemetry::Instance().GetHistogram("obs_test.hist_ns")->Add(42);

  StatsExporter e;
  e.CollectGlobal();
  const std::string json = e.ToJson();
  EXPECT_NE(json.find("\"obs_test.counter\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.hist_ns\""), std::string::npos) << json;
  ObsConfig::SetEnabled(false);
  Telemetry::Instance().Reset();
}

// --- MetricsRegistry gauges --------------------------------------------------

TEST(MetricsRegistryTest, GaugeFoldsIntoCounterOnUnregister) {
  MetricsRegistry registry;
  {
    GaugeToken token =
        registry.RegisterGauge("g", [] { return uint64_t{21}; });
    GaugeToken token2 =
        registry.RegisterGauge("g", [] { return uint64_t{2}; });
    EXPECT_EQ(registry.Snapshot().at("g"), 23u);  // same-name gauges sum
  }
  // Both tokens died: final readings folded into the counter.
  EXPECT_EQ(registry.Snapshot().at("g"), 23u);
}

// --- Telemetry ---------------------------------------------------------------

TEST(TelemetryTest, SameNameSameHistogram) {
  Telemetry& t = Telemetry::Instance();
  ConcurrentHistogram* a = t.GetHistogram("obs_test.same");
  ConcurrentHistogram* b = t.GetHistogram("obs_test.same");
  EXPECT_EQ(a, b);
  t.Reset();
}

// --- ConcurrentHistogram -----------------------------------------------------

TEST(ConcurrentHistogramTest, EightThreadsNoLostUpdates) {
  ConcurrentHistogram ch;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&ch, t] {
      for (uint64_t i = 1; i <= kPerThread; i++) {
        ch.Add(i + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();

  const Histogram merged = ch.Merged();
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t i = 1; i <= kPerThread; i++) {
      expected_sum += i + static_cast<uint64_t>(t);
    }
  }
  EXPECT_EQ(merged.sum(), expected_sum);
  EXPECT_EQ(merged.min(), 1u);
  EXPECT_EQ(merged.max(), kPerThread + kThreads - 1);
}

}  // namespace
}  // namespace dsmdb::obs
