#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/sim_clock.h"
#include "core/dsmdb.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/obs_config.h"
#include "obs/stats_exporter.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "rdma/fabric.h"

namespace dsmdb::obs {
namespace {

// --- Minimal JSON parser (validation only) ----------------------------------
// Enough of RFC 8259 to prove the Chrome trace export is well-formed:
// objects, arrays, strings with escapes, numbers, true/false/null.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    pos_++;  // '{'
    SkipWs();
    if (Peek() == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      pos_++;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    pos_++;  // '['
    SkipWs();
    if (Peek() == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      if (Peek() == ']') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    pos_++;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        pos_++;
        if (pos_ >= s_.size()) return false;
      }
      pos_++;
    }
    if (pos_ >= s_.size()) return false;
    pos_++;  // closing '"'
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') pos_++;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      pos_++;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    const std::string want(lit);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      pos_++;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// --- Tracing -----------------------------------------------------------------

class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimClock::Reset();
    TraceCollector::Instance().Clear();
    ObsConfig::SetTracing(true);
  }
  void TearDown() override {
    ObsConfig::SetTracing(false);
    TraceCollector::Instance().Clear();
    SimClock::Reset();
  }

  static std::vector<TraceEvent> EventsNamed(const char* name) {
    std::vector<TraceEvent> out;
    for (const TraceEvent& e :
         TraceCollector::Instance().Snapshot()) {
      if (std::string(e.name) == name) out.push_back(e);
    }
    return out;
  }
};

TEST_F(TracingTest, SpanNestingIsContained) {
  {
    TraceScope outer("obs_test.outer", "test");
    SimClock::Advance(100);
    {
      TraceScope inner("obs_test.inner", "test");
      SimClock::Advance(50);
    }
    SimClock::Advance(25);
  }
  const auto outer = EventsNamed("obs_test.outer");
  const auto inner = EventsNamed("obs_test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].dur_ns, 175u);
  EXPECT_EQ(inner[0].dur_ns, 50u);
  // Inner is contained in outer, on the same thread.
  EXPECT_EQ(inner[0].tid, outer[0].tid);
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
}

TEST_F(TracingTest, DisabledTracingEmitsNothing) {
  ObsConfig::SetTracing(false);
  {
    TraceScope span("obs_test.invisible", "test");
    SimClock::Advance(10);
  }
  EXPECT_TRUE(EventsNamed("obs_test.invisible").empty());
}

TEST_F(TracingTest, RingBufferWraparoundKeepsNewest) {
  TraceCollector& tc = TraceCollector::Instance();
  tc.SetBufferCapacity(8);
  // Capacity applies to buffers created after the call, so emit from a
  // fresh thread.
  std::thread t([] {
    SimClock::Reset();
    for (int i = 0; i < 20; i++) {
      SimClock::Advance(10);
      TraceScope span("obs_test.wrap", "test");
      SimClock::Advance(1);
    }
  });
  t.join();
  tc.SetBufferCapacity(64 * 1024);

  const auto events = EventsNamed("obs_test.wrap");
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tc.dropped(), 12u);
  // The retained 8 are the newest, oldest-first.
  for (size_t i = 1; i < events.size(); i++) {
    EXPECT_GT(events[i].start_ns, events[i - 1].start_ns);
  }
  // Event k (0-based) starts at 10*(k+1) + k; the survivors are k=12..19.
  EXPECT_EQ(events.front().start_ns, 10u * 13 + 12);
}

TEST_F(TracingTest, ChromeJsonParsesBack) {
  {
    TraceScope a("obs_test.json_a", "test");
    SimClock::Advance(5);
    TraceScope b("obs_test.json_b", "test");
    SimClock::Advance(7);
  }
  const std::string json = TraceCollector::Instance().ToChromeJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_a\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- StatsExporter -----------------------------------------------------------

TEST(StatsExporterTest, MergeSemantics) {
  StatsExporter e;
  // Counters ADD.
  e.AddCounter("c", 3);
  e.AddCounter("c", 4);
  // Scalars OVERWRITE.
  e.AddScalar("s", 1.5);
  e.AddScalar("s", 2.5);
  // Histograms MERGE.
  Histogram h1, h2;
  h1.Add(10);
  h2.Add(1000);
  e.AddHistogram("h", h1);
  e.AddHistogram("h", h2);

  const std::string json = e.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("\"c\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"s\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":10"), std::string::npos) << json;

  const std::string text = e.ToText();
  EXPECT_NE(text.find('c'), std::string::npos);
}

TEST(StatsExporterTest, EmptyExporterIsValidJson) {
  StatsExporter e;
  EXPECT_TRUE(e.empty());
  const std::string json = e.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
}

TEST(StatsExporterTest, CollectGlobalSeesTelemetryAndRegistry) {
  Telemetry::Instance().Reset();
  ObsConfig::SetEnabled(true);
  GlobalMetrics().GetCounter("obs_test.counter")->Add(11);
  Telemetry::Instance().GetHistogram("obs_test.hist_ns")->Add(42);

  StatsExporter e;
  e.CollectGlobal();
  const std::string json = e.ToJson();
  EXPECT_NE(json.find("\"obs_test.counter\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.hist_ns\""), std::string::npos) << json;
  ObsConfig::SetEnabled(false);
  Telemetry::Instance().Reset();
}

// --- MetricsRegistry gauges --------------------------------------------------

TEST(MetricsRegistryTest, GaugeFoldsIntoCounterOnUnregister) {
  MetricsRegistry registry;
  {
    GaugeToken token =
        registry.RegisterGauge("g", [] { return uint64_t{21}; });
    GaugeToken token2 =
        registry.RegisterGauge("g", [] { return uint64_t{2}; });
    EXPECT_EQ(registry.Snapshot().at("g"), 23u);  // same-name gauges sum
  }
  // Both tokens died: final readings folded into the counter.
  EXPECT_EQ(registry.Snapshot().at("g"), 23u);
}

// --- Telemetry ---------------------------------------------------------------

TEST(TelemetryTest, SameNameSameHistogram) {
  Telemetry& t = Telemetry::Instance();
  ConcurrentHistogram* a = t.GetHistogram("obs_test.same");
  ConcurrentHistogram* b = t.GetHistogram("obs_test.same");
  EXPECT_EQ(a, b);
  t.Reset();
}

// --- ConcurrentHistogram -----------------------------------------------------

TEST(ConcurrentHistogramTest, EightThreadsNoLostUpdates) {
  ConcurrentHistogram ch;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&ch, t] {
      for (uint64_t i = 1; i <= kPerThread; i++) {
        ch.Add(i + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();

  const Histogram merged = ch.Merged();
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; t++) {
    for (uint64_t i = 1; i <= kPerThread; i++) {
      expected_sum += i + static_cast<uint64_t>(t);
    }
  }
  EXPECT_EQ(merged.sum(), expected_sum);
  EXPECT_EQ(merged.min(), 1u);
  EXPECT_EQ(merged.max(), kPerThread + kThreads - 1);
}

// --- Causal span trees -------------------------------------------------------

TEST_F(TracingTest, TxnIdsAreDistinctAcrossThreads) {
  std::vector<uint64_t> ids(4, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&ids, t] {
      SimClock::Reset();
      TraceTxnScope root("obs_test.txn_root", "test");
      ids[t] = root.txn_id();
      SimClock::Advance(10);
    });
  }
  for (auto& th : threads) th.join();
  std::set<uint64_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(unique.count(0), 0u);
}

TEST_F(TracingTest, NestedTxnScopeJoinsEnclosingTxn) {
  TraceTxnScope outer("obs_test.outer_txn", "test");
  TraceTxnScope inner("obs_test.inner_txn", "test");
  EXPECT_EQ(inner.txn_id(), outer.txn_id());
  EXPECT_EQ(CurrentTxnId(), outer.txn_id());
}

TEST_F(TracingTest, HandlerSpansStampSimulatedArrivalTime) {
  // Regression test: two-sided handlers run inline on the caller's thread
  // at post time, but their spans must be stamped at the request's
  // simulated arrival on the remote CPU — after half an RTT — not at the
  // caller's current clock.
  rdma::Fabric fabric;
  const rdma::NodeId a = fabric.AddNode("a");
  const rdma::NodeId b = fabric.AddNode("b");
  fabric.RegisterRpcHandler(b, 0, [](std::string_view, std::string* resp) {
    TraceScope inner("obs_test.handler_inner", "test");
    resp->assign("ok");
    return uint64_t{500};
  });

  TraceTxnScope root("obs_test.rpc_txn", "test");
  const uint64_t t0 = SimClock::Now();
  std::string resp;
  ASSERT_TRUE(fabric.Call(a, b, 0, "req", &resp).ok());

  const auto inner = EventsNamed("obs_test.handler_inner");
  const auto handler = EventsNamed("handler.cpu");
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(handler.size(), 1u);
  // The handler's own spans are re-timed to its simulated start...
  EXPECT_GE(inner[0].start_ns, t0 + fabric.model().rtt_ns / 2);
  EXPECT_EQ(inner[0].start_ns, handler[0].start_ns);
  // ...and causally hang off the handler-cpu span of the carrying verb.
  EXPECT_EQ(inner[0].parent_id, handler[0].span_id);
  EXPECT_EQ(inner[0].txn_id, root.txn_id());
}

namespace {

core::DbOptions ShardedDurableOptions() {
  core::DbOptions opts;
  opts.architecture = core::Architecture::kCacheSharding;
  opts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  opts.buffer.capacity_bytes = 256 * 4096;
  opts.buffer.charge_policy_overhead = false;
  opts.durability = core::DurabilityMode::kMemReplication;
  opts.replicated_log.replication_factor = 2;  // 2 memory nodes
  return opts;
}

dsm::ClusterOptions SmallCluster() {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;
  return copts;
}

bool HasSpanNamed(const std::vector<TraceEvent>& events, const char* name) {
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == name) return true;
  }
  return false;
}

}  // namespace

TEST(CausalTraceTest, TwoPcCommitFormsOneConnectedTree) {
  SimClock::Reset();
  ObsConfig::SetTracing(false);
  TraceCollector::Instance().Clear();

  core::DsmDb db(SmallCluster(), ShardedDurableOptions());
  core::ComputeNode* cn0 = db.AddComputeNode();
  db.AddComputeNode();
  const core::Table* t = *db.CreateTable("kv", {64, 100});
  ASSERT_TRUE(db.FinishSetup().ok());

  // Trace exactly one cross-shard transaction (keys 10 and 90 land in
  // different compute-node shards, forcing coordinator + participant 2PC).
  ObsConfig::SetTracing(true);
  std::string v(64, '\0');
  EncodeFixed64(v.data(), 99);
  Result<core::TxnResult> r =
      cn0->ExecuteOneShot(*t, {core::TxnOp::Write(10, v),
                               core::TxnOp::Write(90, v)});
  ObsConfig::SetTracing(false);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->committed);
  ASSERT_GE(cn0->node_stats().two_pc_txns.load(), 1u);

  // Every span of the commit belongs to one txn id and parents into a
  // single root: coordinator root -> prepare/decide fan-out -> per-
  // participant handler spans -> replicated log appends.
  const std::vector<TraceEvent> all = TraceCollector::Instance().Snapshot();
  std::vector<TraceEvent> txn_events;
  uint64_t txn_id = 0;
  for (const TraceEvent& e : all) {
    if (std::string(e.name) == "2pc.prepare") txn_id = e.txn_id;
  }
  ASSERT_NE(txn_id, 0u);
  for (const TraceEvent& e : all) {
    if (e.txn_id == txn_id) txn_events.push_back(e);
  }

  std::map<uint64_t, const TraceEvent*> by_span;
  for (const TraceEvent& e : txn_events) {
    ASSERT_NE(e.span_id, 0u);
    by_span[e.span_id] = &e;
  }
  size_t roots = 0;
  for (const TraceEvent& e : txn_events) {
    if (e.parent_id == 0) {
      roots++;
      EXPECT_EQ(std::string(e.name), "txn.oneshot");
    } else {
      EXPECT_TRUE(by_span.count(e.parent_id))
          << e.name << " parent " << e.parent_id << " missing from tree";
    }
  }
  EXPECT_EQ(roots, 1u);

  EXPECT_TRUE(HasSpanNamed(txn_events, "2pc.prepare"));
  EXPECT_TRUE(HasSpanNamed(txn_events, "2pc.decide"));
  EXPECT_TRUE(HasSpanNamed(txn_events, "2pc.participant.prepare"));
  EXPECT_TRUE(HasSpanNamed(txn_events, "2pc.participant.decide"));
  EXPECT_TRUE(HasSpanNamed(txn_events, "log.replicate"));
  TraceCollector::Instance().Clear();
}

// --- Critical-path attribution ----------------------------------------------

TEST(CriticalPathTest, SyntheticTreePartitionsExactly) {
  // Hand-built causal tree over a 1000 ns root:
  //   [100,400) verb wire, with [200,300) remote handler CPU inside it
  //   (deeper wins), an untyped child of the handler inheriting its
  //   bucket, [80,100) posting, [500,700) lock wait, [800,900) log.
  std::vector<TraceEvent> events = {
      {"txn.attempt", "workload", 0, 1000, 7, 1, 0, 0},
      {"verb.read", "verb.wire", 100, 300, 7, 2, 1, 0},
      {"verb.post", "verb.post", 80, 20, 7, 3, 1, 0},
      {"handler.cpu", "handler.cpu", 200, 100, 7, 4, 2, 0},
      {"handler.detail", "misc", 250, 20, 7, 5, 4, 0},
      {"lock.acquire", "lock.wait", 500, 200, 7, 6, 1, 0},
      {"log.commit", "log.device", 800, 100, 7, 7, 1, 0},
  };
  const LatencyBreakdown bd = AnalyzeCriticalPath(events);
  EXPECT_EQ(bd.txns, 1u);
  EXPECT_DOUBLE_EQ(bd.total_mean_ns, 1000.0);
  EXPECT_DOUBLE_EQ(bd.Mean(LatencyBucket::kVerbWire), 200.0);
  EXPECT_DOUBLE_EQ(bd.Mean(LatencyBucket::kHandlerCpu), 100.0);
  EXPECT_DOUBLE_EQ(bd.Mean(LatencyBucket::kVerbPost), 20.0);
  EXPECT_DOUBLE_EQ(bd.Mean(LatencyBucket::kLockWait), 200.0);
  EXPECT_DOUBLE_EQ(bd.Mean(LatencyBucket::kLog), 100.0);
  EXPECT_DOUBLE_EQ(bd.Mean(LatencyBucket::kCpu), 380.0);
  EXPECT_DOUBLE_EQ(bd.Sum(), 1000.0);
}

TEST(CriticalPathTest, BucketsSumToEndToEndLatencyWithinOnePercent) {
  SimClock::Reset();
  ObsConfig::SetTracing(false);
  TraceCollector::Instance().Clear();

  core::DbOptions opts;
  opts.architecture = core::Architecture::kNoCacheNoSharding;
  opts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  opts.durability = core::DurabilityMode::kMemReplication;
  opts.replicated_log.replication_factor = 2;  // 2 memory nodes
  core::DsmDb db(SmallCluster(), opts);
  core::ComputeNode* cn = db.AddComputeNode();
  const core::Table* t = *db.CreateTable("kv", {64, 200});
  ASSERT_TRUE(db.FinishSetup().ok());

  ObsConfig::SetTracing(true);
  uint64_t total_ns = 0;
  uint64_t txns = 0;
  std::string v(64, '\0');
  for (uint64_t k = 0; k < 25; k++) {
    EncodeFixed64(v.data(), k);
    const uint64_t t0 = SimClock::Now();
    Result<core::TxnResult> r = cn->ExecuteOneShot(
        *t, {core::TxnOp::Read(k), core::TxnOp::Write(k + 100, v)});
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->committed);
    total_ns += SimClock::Now() - t0;
    txns++;
  }
  ObsConfig::SetTracing(false);

  const LatencyBreakdown bd =
      AnalyzeCriticalPath(TraceCollector::Instance().Snapshot());
  TraceCollector::Instance().Clear();
  ASSERT_EQ(bd.txns, txns);
  const double mean = static_cast<double>(total_ns) / txns;
  // The sweep partitions each root span exactly, so the buckets must sum
  // to the measured mean end-to-end latency within 1%.
  EXPECT_NEAR(bd.Sum(), bd.total_mean_ns, 1e-6 * bd.total_mean_ns);
  EXPECT_NEAR(bd.total_mean_ns, mean, 0.01 * mean);
  // A remote-commit workload must not book everything as coordinator CPU:
  // the wire has to show up.
  EXPECT_GT(bd.Mean(LatencyBucket::kVerbWire), 0.0);
}

// --- Flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, RingWraparoundKeepsNewestSamples) {
  FlightRecorder& fr = FlightRecorder::Instance();
  const bool was_enabled = ObsConfig::Enabled();
  ObsConfig::SetEnabled(true);
  fr.Configure(/*interval_ns=*/10, /*capacity=*/8);
  {
    FlightRecorder::Token gauge = fr.RegisterGauge(
        "obs_test.gauge",
        [](uint64_t now_ns) { return static_cast<double>(now_ns); });
    for (uint64_t t = 10; t <= 200; t += 10) fr.MaybeSample(t);

    EXPECT_EQ(fr.total_samples(), 20u);
    const FlightRecorder::Series series = fr.Snapshot();
    ASSERT_EQ(series.t_ns.size(), 8u);  // ring keeps the newest 8
    EXPECT_EQ(series.t_ns.front(), 130u);
    EXPECT_EQ(series.t_ns.back(), 200u);
    for (size_t i = 1; i < series.t_ns.size(); i++) {
      EXPECT_GT(series.t_ns[i], series.t_ns[i - 1]);
    }
    const auto it = series.values.find("obs_test.gauge");
    ASSERT_NE(it, series.values.end());
    ASSERT_EQ(it->second.size(), 8u);
    for (size_t i = 0; i < 8; i++) {
      EXPECT_DOUBLE_EQ(it->second[i],
                       static_cast<double>(series.t_ns[i]));
    }
  }
  fr.Configure(/*interval_ns=*/20'000, /*capacity=*/1024);  // defaults
  ObsConfig::SetEnabled(was_enabled);
}

TEST(FlightRecorderTest, SampleBeforeDueTimeIsSkipped) {
  FlightRecorder& fr = FlightRecorder::Instance();
  const bool was_enabled = ObsConfig::Enabled();
  ObsConfig::SetEnabled(true);
  fr.Configure(/*interval_ns=*/100, /*capacity=*/16);
  FlightRecorder::Token gauge =
      fr.RegisterGauge("obs_test.skip", [](uint64_t) { return 1.0; });
  fr.MaybeSample(100);
  fr.MaybeSample(150);  // before the next due time: skipped
  fr.MaybeSample(199);
  fr.MaybeSample(200);
  EXPECT_EQ(fr.total_samples(), 2u);
  fr.Configure(/*interval_ns=*/20'000, /*capacity=*/1024);
  ObsConfig::SetEnabled(was_enabled);
}

}  // namespace
}  // namespace dsmdb::obs
