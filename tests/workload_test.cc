#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/coding.h"
#include "common/sim_clock.h"
#include "core/dsmdb.h"
#include "workload/driver.h"
#include "workload/smallbank.h"
#include "workload/tpcc_lite.h"
#include "workload/ycsb.h"

namespace dsmdb::workload {
namespace {

TEST(YcsbTest, GeneratesRequestedShape) {
  YcsbOptions opts;
  opts.num_keys = 1'000;
  opts.ops_per_txn = 6;
  opts.write_fraction = 0.5;
  YcsbWorkload w(opts, 1);
  for (int i = 0; i < 100; i++) {
    const auto ops = w.NextTxn();
    ASSERT_EQ(ops.size(), 6u);
    std::set<uint64_t> keys;
    for (const auto& op : ops) {
      EXPECT_LT(op.key, 1'000u);
      EXPECT_TRUE(keys.insert(op.key).second) << "duplicate key in txn";
      if (op.type == core::TxnOpType::kWrite) {
        EXPECT_EQ(op.value.size(), opts.value_size);
      }
    }
    // Keys sorted (lock-ordering discipline).
    uint64_t prev = 0;
    for (const auto& op : ops) {
      EXPECT_GE(op.key, prev);
      prev = op.key;
    }
  }
}

TEST(YcsbTest, WriteFractionZeroIsReadOnly) {
  YcsbOptions opts;
  opts.write_fraction = 0.0;
  YcsbWorkload w(opts, 2);
  for (int i = 0; i < 50; i++) {
    for (const auto& op : w.NextTxn()) {
      EXPECT_EQ(op.type, core::TxnOpType::kRead);
    }
  }
}

TEST(YcsbTest, RangeRestrictionHonored) {
  YcsbOptions opts;
  opts.num_keys = 10'000;
  opts.range_begin = 2'000;
  opts.range_end = 3'000;
  YcsbWorkload w(opts, 3);
  for (int i = 0; i < 1'000; i++) {
    const uint64_t k = w.NextKey();
    EXPECT_GE(k, 2'000u);
    EXPECT_LT(k, 3'000u);
  }
}

TEST(YcsbTest, DeterministicGivenSeed) {
  YcsbOptions opts;
  YcsbWorkload a(opts, 99), b(opts, 99);
  for (int i = 0; i < 20; i++) {
    const auto ta = a.NextTxn();
    const auto tb = b.NextTxn();
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t j = 0; j < ta.size(); j++) {
      EXPECT_EQ(ta[j].key, tb[j].key);
      EXPECT_EQ(ta[j].type, tb[j].type);
    }
  }
}

TEST(SmallBankTest, MixMatchesConfiguredFractions) {
  SmallBankOptions opts;
  opts.balance_fraction = 0.3;
  opts.payment_fraction = 0.5;
  SmallBankWorkload w(opts, 5);
  int reads = 0, payments = 0, deposits = 0;
  for (int i = 0; i < 10'000; i++) {
    const auto ops = w.NextTxn();
    if (ops.size() == 1 && ops[0].type == core::TxnOpType::kRead) {
      reads++;
    } else if (ops.size() == 2) {
      payments++;
      // A payment is balance-neutral.
      EXPECT_EQ(ops[0].delta + ops[1].delta, 0);
      EXPECT_LT(ops[0].key, ops[1].key);  // key-ordered
    } else {
      deposits++;
      EXPECT_GT(ops[0].delta, 0);
    }
  }
  EXPECT_NEAR(reads, 3'000, 300);
  EXPECT_NEAR(payments, 5'000, 400);
  EXPECT_NEAR(deposits, 2'000, 300);
}

TEST(SmallBankTest, CrossShardFractionControlsPairing) {
  SmallBankOptions opts;
  opts.num_accounts = 10'000;
  opts.balance_fraction = 0.0;
  opts.payment_fraction = 1.0;
  opts.num_shards = 4;
  opts.cross_shard_fraction = 1.0;
  SmallBankWorkload w(opts, 6);
  const uint64_t per = 10'000 / 4;
  for (int i = 0; i < 500; i++) {
    const auto ops = w.NextTxn();
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_NE(ops[0].key / per, ops[1].key / per) << "not cross-shard";
  }
}

TEST(DriverTest, AggregatesAcrossNodesAndThreads) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes = {db.AddComputeNode(),
                                           db.AddComputeNode()};
  const core::Table* t = *db.CreateTable("kv", {64, 1'000});
  ASSERT_TRUE(db.FinishSetup().ok());

  DriverOptions opts;
  opts.threads_per_node = 2;
  opts.txns_per_thread = 50;
  YcsbOptions yopts;
  yopts.num_keys = 1'000;
  yopts.zipf_theta = 0.5;

  DriverResult result = RunDriver(
      nodes, opts,
      [&](core::ComputeNode* node, uint32_t tid, Random64& rng) {
        thread_local std::unique_ptr<YcsbWorkload> wl;
        if (!wl) wl = std::make_unique<YcsbWorkload>(yopts, tid + rng.Next() % 3);
        Result<core::TxnResult> r = node->ExecuteOneShot(*t, wl->NextTxn());
        return r.ok() && r->committed;
      });

  EXPECT_EQ(result.attempts, 200u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.sim_seconds, 0.0);
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_EQ(result.latency_ns.count(), 200u);
  EXPECT_FALSE(result.ToString().empty());

  // Results flow through the stats exporter under `workload.<name>.*`.
  obs::StatsExporter exporter;
  result.ExportTo(&exporter, "ycsb");
  const std::string json = exporter.ToJson();
  EXPECT_NE(json.find("\"workload.ycsb.attempts\":200"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"workload.ycsb.txn_latency_ns\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"workload.ycsb.abort_rate\""), std::string::npos)
      << json;
}

TEST(TpccLiteTest, LoadsAndRunsTransactions) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;
  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kCacheNoSharding;
  dopts.buffer.capacity_bytes = 512 * 4096;
  dopts.buffer.charge_policy_overhead = false;
  core::DsmDb db(copts, dopts);
  core::ComputeNode* cn = db.AddComputeNode();
  TpccOptions topts;
  topts.warehouses = 2;
  topts.customers_per_district = 30;
  topts.stock_per_wh = 200;
  Result<TpccLite> tpcc = TpccLite::Create(&db, topts);
  ASSERT_TRUE(tpcc.ok()) << tpcc.status();
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  DriverOptions dropts;
  dropts.threads_per_node = 1;
  dropts.txns_per_thread = 30;
  std::atomic<uint32_t> i{0};
  DriverResult result = RunDriver(
      {cn}, dropts,
      [&](core::ComputeNode* node, uint32_t, Random64& rng) {
        Status s = (i.fetch_add(1) % 2 == 0) ? tpcc->RunNewOrder(node, rng)
                                             : tpcc->RunPayment(node, rng);
        EXPECT_TRUE(s.ok() || s.IsAborted()) << s;
        return s.ok();
      });
  EXPECT_GT(result.committed, 0u);
  obs::StatsExporter exporter;
  result.ExportTo(&exporter, "tpcc-lite");
  EXPECT_NE(exporter.ToJson().find("\"workload.tpcc-lite.committed\""),
            std::string::npos);

  // Money flowed into warehouses: total warehouse ytd must be positive
  // and must equal district ytd total (Payment writes both).
  int64_t wh_ytd = 0, di_ytd = 0;
  for (uint64_t w = 0; w < topts.warehouses; w++) {
    std::string v;
    auto txn = *cn->Begin();
    ASSERT_TRUE(txn->Read(tpcc->warehouse().RefFor(w), &v).ok());
    wh_ytd += static_cast<int64_t>(DecodeFixed64(v.data()));
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (uint64_t d = 0; d < topts.warehouses * topts.districts_per_wh; d++) {
    std::string v;
    auto txn = *cn->Begin();
    ASSERT_TRUE(txn->Read(tpcc->district().RefFor(d), &v).ok());
    // district numeric column mixes next_o_id (NewOrder) and ytd
    // (Payment); subtract the initial 1 per district and order counts.
    di_ytd += static_cast<int64_t>(DecodeFixed64(v.data()));
    ASSERT_TRUE(txn->Commit().ok());
  }
  EXPECT_GE(wh_ytd, 0);
  EXPECT_GT(di_ytd, 0);
}

}  // namespace
}  // namespace dsmdb::workload
