#include <gtest/gtest.h>

#include <cstring>

#include "buffer/compressed_cache.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"

namespace dsmdb::buffer {
namespace {

TEST(PageCodecTest, RoundTripsCompressibleData) {
  std::string page(4096, '\0');
  for (int i = 0; i < 100; i++) page[i * 40] = static_cast<char>(i);
  const std::string compressed =
      PageCodec::Compress(page.data(), page.size());
  EXPECT_LT(compressed.size(), page.size() / 4);
  std::string out(page.size(), 'x');
  ASSERT_TRUE(
      PageCodec::Decompress(compressed, out.data(), out.size()));
  EXPECT_EQ(out, page);
}

TEST(PageCodecTest, RoundTripsIncompressibleData) {
  Random64 rng(9);
  std::string page(4096, '\0');
  for (char& c : page) c = static_cast<char>(rng.Next());
  const std::string compressed =
      PageCodec::Compress(page.data(), page.size());
  // Worst case is bounded modest expansion.
  EXPECT_LT(compressed.size(), page.size() + page.size() / 50);
  std::string out(page.size(), '\0');
  ASSERT_TRUE(PageCodec::Decompress(compressed, out.data(), out.size()));
  EXPECT_EQ(out, page);
}

TEST(PageCodecTest, RoundTripsManyRandomMixes) {
  Random64 rng(11);
  for (int trial = 0; trial < 50; trial++) {
    const size_t len = rng.Uniform(5'000) + 1;
    std::string data(len, '\0');
    size_t i = 0;
    while (i < len) {  // alternating runs and noise
      if (rng.Bernoulli(0.5)) {
        const size_t run = std::min(len - i, rng.Uniform(600) + 1);
        std::memset(data.data() + i, static_cast<char>(rng.Next()), run);
        i += run;
      } else {
        const size_t n = std::min(len - i, rng.Uniform(20) + 1);
        for (size_t j = 0; j < n; j++) {
          data[i + j] = static_cast<char>(rng.Next());
        }
        i += n;
      }
    }
    const std::string compressed = PageCodec::Compress(data.data(), len);
    std::string out(len, '\0');
    ASSERT_TRUE(PageCodec::Decompress(compressed, out.data(), len));
    ASSERT_EQ(out, data) << "trial " << trial;
  }
}

TEST(PageCodecTest, RejectsTruncatedInput) {
  std::string page(256, 'a');
  std::string compressed = PageCodec::Compress(page.data(), page.size());
  compressed.resize(compressed.size() - 1);
  std::string out(page.size(), '\0');
  EXPECT_FALSE(PageCodec::Decompress(compressed, out.data(), out.size()));
}

class CompressedCacheTest : public ::testing::Test {
 protected:
  CompressedCacheTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 1;
    copts.memory_node.capacity_bytes = 64 << 20;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  /// Allocates `pages` zero-filled (highly compressible) pages.
  dsm::GlobalAddress AllocPages(size_t pages) {
    return *client_->Alloc(pages * 4096, 0);
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
};

TEST_F(CompressedCacheTest, HitAfterMiss) {
  dsm::GlobalAddress base = AllocPages(4);
  const uint64_t v = 12345;
  ASSERT_TRUE(client_->Write(base, &v, 8).ok());
  CompressedPageCache cache(client_.get(), {});
  uint64_t out = 0;
  ASSERT_TRUE(cache.Read(base, &out, 8).ok());
  EXPECT_EQ(out, 12345u);
  ASSERT_TRUE(cache.Read(base, &out, 8).ok());
  EXPECT_EQ(out, 12345u);
  const CompressedCacheStats s = cache.Snapshot();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_GT(s.CompressionRatio(), 4.0);  // zero-filled pages compress well
}

TEST_F(CompressedCacheTest, CapacityCountsCompressedBytes) {
  // 64 compressible pages (~tens of bytes each compressed) must all fit a
  // budget far below 64 * 4096 raw bytes.
  dsm::GlobalAddress base = AllocPages(64);
  CompressedPageCache::Options opts;
  opts.capacity_bytes = 32 * 1024;  // 8 raw pages worth
  CompressedPageCache cache(client_.get(), opts);
  char buf[16];
  for (int p = 0; p < 64; p++) {
    ASSERT_TRUE(cache.Read(base.Plus(p * 4096), buf, sizeof(buf)).ok());
  }
  EXPECT_EQ(cache.ResidentPages(), 64u);
  EXPECT_EQ(cache.Snapshot().evictions, 0u);
}

TEST_F(CompressedCacheTest, EvictsWhenCompressedBytesExceedBudget) {
  dsm::GlobalAddress base = AllocPages(32);
  // Fill the pages with incompressible data.
  Random64 rng(3);
  std::vector<char> noise(4096);
  for (int p = 0; p < 32; p++) {
    for (char& c : noise) c = static_cast<char>(rng.Next());
    ASSERT_TRUE(
        client_->Write(base.Plus(p * 4096), noise.data(), noise.size()).ok());
  }
  CompressedPageCache::Options opts;
  opts.capacity_bytes = 8 * 4096;  // ~8 incompressible pages
  CompressedPageCache cache(client_.get(), opts);
  char buf[16];
  for (int p = 0; p < 32; p++) {
    ASSERT_TRUE(cache.Read(base.Plus(p * 4096), buf, sizeof(buf)).ok());
  }
  EXPECT_LE(cache.ResidentPages(), 9u);
  EXPECT_GT(cache.Snapshot().evictions, 20u);
  EXPECT_LE(cache.Snapshot().compressed_bytes, opts.capacity_bytes);
}

TEST_F(CompressedCacheTest, InvalidateForcesRefetch) {
  dsm::GlobalAddress base = AllocPages(1);
  CompressedPageCache cache(client_.get(), {});
  uint64_t out = 0;
  ASSERT_TRUE(cache.Read(base, &out, 8).ok());
  const uint64_t v = 777;
  ASSERT_TRUE(client_->Write(base, &v, 8).ok());
  cache.Invalidate(base);
  ASSERT_TRUE(cache.Read(base, &out, 8).ok());
  EXPECT_EQ(out, 777u);
  EXPECT_EQ(cache.Snapshot().misses, 2u);
}

TEST_F(CompressedCacheTest, HitChargesDecompressionCost) {
  dsm::GlobalAddress base = AllocPages(1);
  CompressedPageCache::Options opts;
  opts.decompress_bytes_per_ns = 2.0;
  CompressedPageCache cache(client_.get(), opts);
  uint64_t out;
  ASSERT_TRUE(cache.Read(base, &out, 8).ok());
  SimClock::Reset();
  ASSERT_TRUE(cache.Read(base, &out, 8).ok());
  EXPECT_GE(SimClock::Now(), 4096u / 2);  // >= one page of decompression
}

}  // namespace
}  // namespace dsmdb::buffer
