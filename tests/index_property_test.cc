#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "index/race_hash.h"
#include "index/sherman_btree.h"

namespace dsmdb::index {
namespace {

/// Randomized oracle tests: every index must agree with std::map under a
/// long mixed insert/update/delete/lookup/scan trace.

class IndexOracleTest : public ::testing::TestWithParam<uint64_t /*seed*/> {
 protected:
  IndexOracleTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 256 << 20;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
};

TEST_P(IndexOracleTest, BTreeMatchesStdMap) {
  dsm::GlobalAddress meta = *ShermanBTree::Create(client_.get());
  BTreeOptions opts;
  opts.cache_internal_nodes = GetParam() % 2 == 0;  // vary cache on/off
  ShermanBTree tree(client_.get(), meta, opts);
  std::map<uint64_t, uint64_t> oracle;
  Random64 rng(GetParam());

  for (int i = 0; i < 6'000; i++) {
    const double p = rng.NextDouble();
    const uint64_t key = rng.Uniform(2'000) + 1;
    if (p < 0.45) {  // insert / update
      const uint64_t value = rng.Next() | 1;
      ASSERT_TRUE(tree.Insert(key, value).ok());
      oracle[key] = value;
    } else if (p < 0.6) {  // delete
      const Status s = tree.Delete(key);
      if (oracle.erase(key) > 0) {
        ASSERT_TRUE(s.ok());
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else if (p < 0.95) {  // point lookup
      Result<uint64_t> got = tree.Search(key);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        ASSERT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        ASSERT_EQ(*got, it->second) << key;
      }
    } else {  // short range scan
      Result<std::vector<std::pair<uint64_t, uint64_t>>> scan =
          tree.Scan(key, 10);
      ASSERT_TRUE(scan.ok());
      auto it = oracle.lower_bound(key);
      for (const auto& [k, v] : *scan) {
        ASSERT_NE(it, oracle.end());
        ASSERT_EQ(k, it->first);
        ASSERT_EQ(v, it->second);
        ++it;
      }
      // The scan must not terminate early while the oracle has more.
      if (scan->size() < 10) {
        ASSERT_EQ(it, oracle.end());
      }
    }
  }
  // Final full agreement.
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(*tree.Search(k), v) << k;
  }
}

TEST_P(IndexOracleTest, RaceHashMatchesStdMap) {
  dsm::GlobalAddress base = *RaceHash::Create(client_.get(), 8'192);
  RaceHash hash(client_.get(), base, 8'192);
  std::map<uint64_t, uint64_t> oracle;
  Random64 rng(GetParam() ^ 0xABCD);

  for (int i = 0; i < 6'000; i++) {
    const double p = rng.NextDouble();
    const uint64_t key = rng.Uniform(3'000) + 1;
    if (p < 0.35) {  // insert
      const uint64_t value = rng.Next() | 1;
      const Status s = hash.Insert(key, value);
      if (oracle.contains(key)) {
        ASSERT_TRUE(s.IsAlreadyExists()) << key;
      } else if (s.ok()) {
        oracle[key] = value;
      } else {
        ASSERT_TRUE(s.IsOutOfMemory()) << s;  // full buckets possible
      }
    } else if (p < 0.5) {  // update
      const uint64_t value = rng.Next() | 1;
      const Status s = hash.Update(key, value);
      if (oracle.contains(key)) {
        ASSERT_TRUE(s.ok());
        oracle[key] = value;
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else if (p < 0.65) {  // delete
      const Status s = hash.Delete(key);
      if (oracle.erase(key) > 0) {
        ASSERT_TRUE(s.ok());
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else {  // lookup
      Result<uint64_t> got = hash.Get(key);
      auto it = oracle.find(key);
      if (it == oracle.end()) {
        ASSERT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        ASSERT_EQ(*got, it->second) << key;
      }
    }
  }
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(*hash.Get(k), v) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexOracleTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace dsmdb::index
