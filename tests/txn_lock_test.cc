#include <gtest/gtest.h>

#include <atomic>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "txn/rdma_lock.h"
#include "txn/record_format.h"
#include "txn/timestamp_oracle.h"

namespace dsmdb::txn {
namespace {

class RdmaLockTest : public ::testing::Test {
 protected:
  RdmaLockTest() {
    dsm::ClusterOptions opts;
    opts.num_memory_nodes = 1;
    cluster_ = std::make_unique<dsm::Cluster>(opts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    word_ = *client_->Alloc(64);
    const uint64_t zero = 0;
    EXPECT_TRUE(client_->Write(word_, &zero, 8).ok());
    SimClock::Reset();
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
  dsm::GlobalAddress word_;
};

TEST_F(RdmaLockTest, SpinLockAcquireRelease) {
  RdmaSpinLock lock(client_.get());
  ASSERT_TRUE(lock.TryAcquire(word_, 42).ok());
  EXPECT_TRUE(lock.TryAcquire(word_, 43).IsBusy());
  Result<uint64_t> holder = lock.Peek(word_);
  ASSERT_TRUE(holder.ok());
  EXPECT_EQ(*holder, 42u);
  ASSERT_TRUE(lock.Release(word_, 42).ok());
  EXPECT_EQ(*lock.Peek(word_), 0u);
  ASSERT_TRUE(lock.TryAcquire(word_, 43).ok());
  ASSERT_TRUE(lock.Release(word_, 43).ok());
}

TEST_F(RdmaLockTest, ReleaseOfForeignLockFails) {
  RdmaSpinLock lock(client_.get());
  ASSERT_TRUE(lock.TryAcquire(word_, 1).ok());
  EXPECT_TRUE(lock.Release(word_, 2).IsInternal());
  ASSERT_TRUE(lock.Release(word_, 1).ok());
}

TEST_F(RdmaLockTest, SpinLockMutualExclusionUnderContention) {
  RdmaSpinLock lock(client_.get());
  uint64_t counter = 0;  // protected by the RDMA lock
  ParallelFor(8, [&](size_t t) {
    SimClock::Reset();
    for (int i = 0; i < 200; i++) {
      const uint64_t id = t * 1000 + i + 1;
      ASSERT_TRUE(lock.Acquire(word_, id, 1'000'000).ok());
      counter++;
      ASSERT_TRUE(lock.Release(word_, id).ok());
    }
  });
  EXPECT_EQ(counter, 1600u);
}

TEST_F(RdmaLockTest, SharedLockAdmitsManyReaders) {
  RdmaSharedExclusiveLock lock(client_.get());
  ASSERT_TRUE(lock.TryAcquireShared(word_).ok());
  ASSERT_TRUE(lock.TryAcquireShared(word_).ok());
  ASSERT_TRUE(lock.TryAcquireShared(word_).ok());
  // Writers are blocked while readers hold it.
  EXPECT_TRUE(lock.TryAcquireExclusive(word_, 7, 2).IsBusy());
  ASSERT_TRUE(lock.ReleaseShared(word_).ok());
  ASSERT_TRUE(lock.ReleaseShared(word_).ok());
  ASSERT_TRUE(lock.ReleaseShared(word_).ok());
  ASSERT_TRUE(lock.TryAcquireExclusive(word_, 7, 2).ok());
  // Readers are blocked while the writer holds it.
  EXPECT_TRUE(lock.TryAcquireShared(word_, 2).IsBusy());
  ASSERT_TRUE(lock.ReleaseExclusive(word_, 7).ok());
}

TEST_F(RdmaLockTest, SharedExclusiveCostsMoreRoundTrips) {
  // The paper: exclusive spinlock = 1 RTT; shared-exclusive >= 2 RTTs.
  RdmaSpinLock spin(client_.get());
  RdmaSharedExclusiveLock se(client_.get());
  rdma::Fabric& fabric = cluster_->fabric();

  fabric.ResetStats();
  ASSERT_TRUE(spin.TryAcquire(word_, 1).ok());
  const uint64_t spin_rtts = fabric.TotalStats().RoundTrips();
  ASSERT_TRUE(spin.Release(word_, 1).ok());

  fabric.ResetStats();
  ASSERT_TRUE(se.TryAcquireShared(word_).ok());
  const uint64_t se_rtts = fabric.TotalStats().RoundTrips();
  ASSERT_TRUE(se.ReleaseShared(word_).ok());

  EXPECT_EQ(spin_rtts, 1u);
  EXPECT_GE(se_rtts, 2u);
}

TEST_F(RdmaLockTest, SharedCountIsExactUnderConcurrency) {
  RdmaSharedExclusiveLock lock(client_.get());
  std::atomic<int> acquired{0};
  ParallelFor(8, [&](size_t) {
    SimClock::Reset();
    for (int i = 0; i < 100; i++) {
      if (lock.TryAcquireShared(word_, 64).ok()) {
        acquired++;
        ASSERT_TRUE(lock.ReleaseShared(word_).ok());
      }
    }
  });
  EXPECT_GT(acquired.load(), 0);
  uint64_t final_word = 0;
  ASSERT_TRUE(client_->Read(word_, &final_word, 8).ok());
  EXPECT_EQ(final_word, 0u);  // all readers drained
}

TEST_F(RdmaLockTest, LockWordEncoding) {
  EXPECT_TRUE(IsExclusive(MakeExclusiveLock(5)));
  EXPECT_EQ(LockHolderTs(MakeExclusiveLock(5)), 5u);
  EXPECT_FALSE(IsExclusive(3));  // reader count 3
  EXPECT_EQ(ReaderCount(3), 3u);
  EXPECT_EQ(ReaderCount(MakeExclusiveLock(5)), 0u);
}

TEST_F(RdmaLockTest, TsoWordPacking) {
  const uint64_t w = PackTso(100, 42);
  EXPECT_EQ(TsoRts(w), 100u);
  EXPECT_EQ(TsoWts(w), 42u);
}

TEST_F(RdmaLockTest, RecordStride) {
  EXPECT_EQ(RecordStride(0), 16u);
  EXPECT_EQ(RecordStride(1), 24u);
  EXPECT_EQ(RecordStride(64), 80u);
  RecordRef ref{dsm::GlobalAddress{1, 100}, 64};
  EXPECT_EQ(ref.LockWord().offset, 100u);
  EXPECT_EQ(ref.VersionWord().offset, 108u);
  EXPECT_EQ(ref.Value().offset, 116u);
}

class OracleTest : public RdmaLockTest {};

TEST_F(OracleTest, FaaOracleIsMonotonicAndUnique) {
  TimestampOracle oracle(client_.get(), OracleMode::kRdmaFaa,
                         TimestampOracle::DefaultCounter());
  uint64_t prev = 0;
  for (int i = 0; i < 100; i++) {
    Result<uint64_t> ts = oracle.Next();
    ASSERT_TRUE(ts.ok());
    EXPECT_GT(*ts, prev);
    prev = *ts;
  }
  Result<uint64_t> cur = oracle.Current();
  ASSERT_TRUE(cur.ok());
  EXPECT_GE(*cur, prev);
}

TEST_F(OracleTest, FaaOracleUniqueAcrossThreads) {
  TimestampOracle oracle(client_.get(), OracleMode::kRdmaFaa,
                         TimestampOracle::DefaultCounter());
  std::vector<std::vector<uint64_t>> got(8);
  ParallelFor(8, [&](size_t t) {
    SimClock::Reset();
    for (int i = 0; i < 500; i++) got[t].push_back(*oracle.Next());
  });
  std::set<uint64_t> all;
  for (const auto& v : got) {
    for (uint64_t ts : v) EXPECT_TRUE(all.insert(ts).second);
  }
  EXPECT_EQ(all.size(), 4000u);
}

TEST_F(OracleTest, FaaCostsOneRoundTripPerTimestamp) {
  TimestampOracle oracle(client_.get(), OracleMode::kRdmaFaa,
                         TimestampOracle::DefaultCounter());
  cluster_->fabric().ResetStats();
  ASSERT_TRUE(oracle.Next().ok());
  EXPECT_EQ(cluster_->fabric().TotalStats().faa_ops, 1u);
}

TEST_F(OracleTest, LocalClockCostsZeroRoundTrips) {
  TimestampOracle oracle(client_.get(), OracleMode::kLocalClock,
                         TimestampOracle::DefaultCounter());
  cluster_->fabric().ResetStats();
  const uint64_t a = *oracle.Next();
  const uint64_t b = *oracle.Next();
  EXPECT_GT(b, a);
  EXPECT_EQ(cluster_->fabric().TotalStats().RoundTrips(), 0u);
}

}  // namespace
}  // namespace dsmdb::txn
