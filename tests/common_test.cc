#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/spin_latch.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace dsmdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key 42");
}

TEST(StatusTest, CopyAndMoveSemantics) {
  Status s = Status::Aborted("conflict");
  Status copy = s;
  EXPECT_TRUE(copy.IsAborted());
  EXPECT_EQ(copy.message(), "conflict");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsAborted());
  EXPECT_TRUE(s.ok());  // moved-from is OK  // NOLINT(bugprone-use-after-move)
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfMemory().IsOutOfMemory());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::TimedOut().IsTimedOut());
  EXPECT_TRUE(Status::Unavailable().IsUnavailable());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Internal().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Busy("later");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBusy());
  EXPECT_EQ(r.value_or(3), 3);
}

Result<int> Doubled(Result<int> in) {
  DSMDB_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(Status::NotFound());
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(SimClockTest, AdvanceAndSet) {
  SimClock::Reset();
  EXPECT_EQ(SimClock::Now(), 0u);
  SimClock::Advance(100);
  EXPECT_EQ(SimClock::Now(), 100u);
  SimClock::AdvanceTo(50);  // no-op backwards
  EXPECT_EQ(SimClock::Now(), 100u);
  SimClock::AdvanceTo(250);
  EXPECT_EQ(SimClock::Now(), 250u);
  // Rewinding is reserved for SimFanOut branches: each BeginBranch resumes
  // from the fork point, and Join lands on the slowest branch.
  {
    SimFanOut fan;
    fan.BeginBranch();
    SimClock::Advance(40);  // branch 1 ends at 290
    fan.BeginBranch();
    EXPECT_EQ(SimClock::Now(), 250u);  // rewound to the fork point
    SimClock::Advance(10);  // branch 2 ends at 260
    fan.Join();
  }
  EXPECT_EQ(SimClock::Now(), 290u);
  SimClock::Reset();
}

TEST(SimClockTest, PerThreadIsolation) {
  SimClock::Reset();
  SimClock::Advance(777);
  std::thread other([] {
    EXPECT_EQ(SimClock::Now(), 0u);
    SimClock::Advance(5);
    EXPECT_EQ(SimClock::Now(), 5u);
  });
  other.join();
  EXPECT_EQ(SimClock::Now(), 777u);
  SimClock::Reset();
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Add(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Log-bucketing error is bounded (~6%).
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 40);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990, 70);
}

TEST(HistogramTest, MergeAndClear) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  a.Clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.Percentile(99), 0u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Add(1ULL << 40);
  h.Add(3ULL << 40);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.max(), 3ULL << 40);
  EXPECT_LE(h.Percentile(10), 3ULL << 40);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.Percentile(0), 0u);
  EXPECT_EQ(empty.Percentile(50), 0u);
  EXPECT_EQ(empty.Percentile(100), 0u);
  EXPECT_EQ(empty.min(), 0u);

  Histogram h;
  h.Add(100);
  h.Add(200);
  h.Add(400);
  // p <= 0 pins to min, p >= 100 pins to max (no bucket rounding).
  EXPECT_EQ(h.Percentile(0), 100u);
  EXPECT_EQ(h.Percentile(-5), 100u);
  EXPECT_EQ(h.Percentile(100), 400u);
  EXPECT_EQ(h.Percentile(250), 400u);
  // Interior percentiles stay within [min, max].
  for (double p : {1.0, 33.0, 66.0, 99.0}) {
    EXPECT_GE(h.Percentile(p), h.min());
    EXPECT_LE(h.Percentile(p), h.max());
  }
}

TEST(HistogramTest, SingleValuePercentiles) {
  Histogram h;
  h.Add(777);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 777u) << "p=" << p;
  }
  EXPECT_EQ(h.sum(), 777u);
}

TEST(ConcurrentHistogramTest, SingleThreadMatchesPlain) {
  ConcurrentHistogram ch(4);
  Histogram plain;
  for (uint64_t v = 1; v <= 500; v++) {
    ch.Add(v);
    plain.Add(v);
  }
  const Histogram merged = ch.Merged();
  EXPECT_EQ(merged.count(), plain.count());
  EXPECT_EQ(merged.sum(), plain.sum());
  EXPECT_EQ(merged.min(), plain.min());
  EXPECT_EQ(merged.max(), plain.max());
  EXPECT_EQ(merged.Percentile(50), plain.Percentile(50));
}

TEST(ConcurrentHistogramTest, ClearResets) {
  ConcurrentHistogram ch;
  ch.Add(5);
  ch.Add(10);
  EXPECT_EQ(ch.Merged().count(), 2u);
  ch.Clear();
  EXPECT_EQ(ch.Merged().count(), 0u);
  ch.Add(7);
  EXPECT_EQ(ch.Merged().count(), 1u);
  EXPECT_EQ(ch.Merged().min(), 7u);
}

TEST(RandomTest, DeterministicWithSeed) {
  Random64 a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random64 rng(7);
  for (int i = 0; i < 1000; i++) {
    const uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(ZipfianTest, RespectsDomain) {
  ZipfianGenerator zipf(1000, 0.99, 3);
  for (int i = 0; i < 10'000; i++) {
    EXPECT_LT(zipf.Next(), 1000u);
    EXPECT_LT(zipf.NextScrambled(), 1000u);
  }
}

TEST(ZipfianTest, SkewConcentratesMass) {
  // theta=0.99: the hottest 1% of ranks should absorb far more than 1%.
  ZipfianGenerator zipf(10'000, 0.99, 5);
  uint64_t hot = 0;
  const int n = 100'000;
  for (int i = 0; i < n; i++) {
    if (zipf.Next() < 100) hot++;
  }
  EXPECT_GT(hot, n / 10);  // > 10% of accesses on 1% of keys
}

TEST(ZipfianTest, ThetaZeroIsUniform) {
  ZipfianGenerator zipf(100, 0.0, 11);
  std::vector<uint64_t> counts(100, 0);
  const int n = 100'000;
  for (int i = 0; i < n; i++) counts[zipf.Next()]++;
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 100.0, n / 100.0 * 0.5);
  }
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xDEADBEEF);
  EXPECT_EQ(DecodeFixed64(buf.data() + 4), 0x0123456789ABCDEFULL);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "world!");
  size_t pos = 0;
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &s));
  EXPECT_EQ(s, "world!");
  EXPECT_FALSE(GetLengthPrefixed(buf, &pos, &s));
}

TEST(CodingTest, ChecksumDetectsChange) {
  std::string data = "some log record payload";
  const uint64_t c1 = Checksum64(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(c1, Checksum64(data.data(), data.size()));
}

TEST(SpinLatchTest, MutualExclusion) {
  SpinLatch latch;
  int counter = 0;
  ParallelFor(8, [&](size_t) {
    for (int i = 0; i < 10'000; i++) {
      SpinLatchGuard g(latch);
      counter++;
    }
  });
  EXPECT_EQ(counter, 80'000);
}

TEST(SpinLatchTest, TryLock) {
  SpinLatch latch;
  EXPECT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());
  latch.Unlock();
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(SharedSpinLatchTest, ManyReadersOneWriter) {
  SharedSpinLatch latch;
  std::atomic<int> value{0};
  std::atomic<bool> torn{false};
  ParallelFor(8, [&](size_t idx) {
    for (int i = 0; i < 2'000; i++) {
      if (idx == 0) {
        latch.LockExclusive();
        value.store(value.load() + 1, std::memory_order_relaxed);
        latch.UnlockExclusive();
      } else {
        latch.LockShared();
        if (value.load(std::memory_order_relaxed) < 0) torn = true;
        latch.UnlockShared();
      }
    }
  });
  EXPECT_FALSE(torn);
  EXPECT_EQ(value.load(), 2'000);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; i++) {
    pool.Submit([&] { done++; });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(Hash64Test, SpreadsValues) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; i++) seen.insert(Hash64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace dsmdb
