#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/spin_latch.h"
#include "core/dsmdb.h"
#include "dsm/dsm_client.h"
#include "obs/obs_config.h"
#include "obs/telemetry.h"
#include "rt/scheduler.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

namespace dsmdb::rt {
namespace {

// ---------------------------------------------------------------------------
// Core scheduler mechanics
// ---------------------------------------------------------------------------

TEST(SchedTest, SingleTaskMatchesPlainTimeline) {
  // One task = the plain blocking timeline: every SimWait self-resumes at
  // exactly the requested wake time.
  SimClock::Reset();
  SimClock::Advance(500);
  Scheduler sched;
  uint64_t inside = 0;
  sched.Run([&] {
    EXPECT_EQ(SimClock::Now(), 500u);
    SimCharge(100, 1'000);
    EXPECT_EQ(SimClock::Now(), 1'600u);
    SimWait(SimClock::Now() + 400);
    inside = SimClock::Now();
  });
  EXPECT_EQ(inside, 2'000u);
  EXPECT_EQ(sched.FinalSimNs(), 2'000u);
  EXPECT_EQ(sched.GetStats().tasks_spawned, 1u);
}

TEST(SchedTest, ResumesInSimulatedWakeOrder) {
  // Tasks park until different simulated times; resumption must follow
  // wake order, not spawn order.
  SimClock::Reset();
  Scheduler sched;
  std::vector<int> order;
  sched.Run([&] {
    sched.Spawn([&] {
      SimWait(3'000);
      order.push_back(3);
    });
    sched.Spawn([&] {
      SimWait(1'000);
      order.push_back(1);
    });
    sched.Spawn([&] {
      SimWait(2'000);
      order.push_back(2);
    });
  });
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(sched.FinalSimNs(), 3'000u);
}

TEST(SchedTest, EqualWakesAreFifoFair) {
  // Tasks repeatedly parking to the same wake time interleave round-robin
  // (FIFO seq tiebreak) — no task starves behind an always-earlier rival.
  SimClock::Reset();
  Scheduler sched;
  std::string log;
  sched.Run([&] {
    for (char id : {'A', 'B', 'C'}) {
      sched.Spawn([&, id] {
        for (int i = 0; i < 3; i++) {
          log.push_back(id);
          SimWait(SimClock::Now() + 100);
        }
      });
    }
  });
  EXPECT_EQ(log, "ABCABCABC");
}

TEST(SchedTest, WireWaitsOverlapAcrossTasks) {
  // Four tasks, each 5 iterations of (100ns CPU, 1000ns wire). CPU
  // serializes on the core; wire overlaps. Steady-state period is
  // max(cpu + wire, depth * cpu) = 1100ns, so the whole run is ~k * 1100
  // plus the pipeline fill — far below the 4 * 5 * 1100 serial sum.
  SimClock::Reset();
  constexpr uint64_t kDepth = 4, kIters = 5, kCpu = 100, kWire = 1'000;
  Scheduler sched;
  sched.Run([&] {
    for (uint64_t d = 0; d < kDepth; d++) {
      sched.Spawn([&] {
        for (uint64_t i = 0; i < kIters; i++) SimCharge(kCpu, kWire);
      });
    }
  });
  const uint64_t serial = kDepth * kIters * (kCpu + kWire);  // 22'000
  const uint64_t one_chain = kIters * (kCpu + kWire);        // 5'500
  EXPECT_GE(sched.FinalSimNs(), one_chain);
  EXPECT_LE(sched.FinalSimNs(), one_chain + kDepth * kCpu + 1'000);
  EXPECT_LT(sched.FinalSimNs(), serial / 3);
  EXPECT_GT(sched.GetStats().parks, 0u);
}

TEST(SchedTest, SpawnBackpressureBoundsLiveTasks) {
  SimClock::Reset();
  Scheduler::Options opts;
  opts.max_tasks = 3;  // root + 2 children live at once
  Scheduler sched(opts);
  int live = 0, max_live = 0, done = 0;
  sched.Run([&] {
    for (int i = 0; i < 10; i++) {
      sched.Spawn([&] {
        live++;
        max_live = std::max(max_live, live);
        SimWait(SimClock::Now() + 500);  // keep the lane genuinely live
        live--;
        done++;
      });
    }
  });
  EXPECT_EQ(done, 10);
  EXPECT_EQ(sched.GetStats().tasks_spawned, 11u);  // root + 10
  EXPECT_LE(sched.GetStats().depth_hwm, 3u);
  EXPECT_LE(max_live, 2);  // children concurrently live beside the root
}

TEST(SchedTest, ExceptionMidSuspensionUnwindsAndPropagates) {
  // A task that throws after parking must not wedge the scheduler: the
  // sibling finishes, Run() joins everything, then rethrows.
  SimClock::Reset();
  Scheduler sched;
  bool sibling_done = false;
  EXPECT_THROW(
      sched.Run([&] {
        sched.Spawn([&] {
          SimWait(1'000);
          throw std::runtime_error("txn abort mid-flight");
        });
        sched.Spawn([&] {
          SimWait(2'000);
          sibling_done = true;
        });
      }),
      std::runtime_error);
  EXPECT_TRUE(sibling_done);
  EXPECT_EQ(sched.FinalSimNs(), 2'000u);
}

TEST(SchedTest, SimNoParkDegradesToAdvanceTo) {
  // Inside a provisional timeline (inline RPC handler, SimFanOut branch)
  // SimWait must not park — it just advances the clock.
  SimClock::Reset();
  Scheduler sched;
  sched.Run([&] {
    const uint64_t parks_before = sched.GetStats().parks;
    {
      SimNoPark guard;
      SimWait(SimClock::Now() + 5'000);
    }
    EXPECT_EQ(sched.GetStats().parks, parks_before);
    EXPECT_EQ(SimClock::Now(), 5'000u);
  });
}

TEST(SchedTest, CoopYieldLetsParkedLatchHolderRun) {
  // Holder takes a latch, parks mid-IO; spinner needs the latch. On one
  // worker this deadlocks unless the spin loop's CoopYield parks the
  // spinner so the holder can resume and release. Clock-neutrality: the
  // spinner's own clock must not move from spinning.
  SimClock::Reset();
  Scheduler sched;
  SpinLatch latch;
  bool critical_done = false;
  sched.Run([&] {
    sched.Spawn([&] {
      latch.Lock();
      SimWait(SimClock::Now() + 2'000);  // park while holding the latch
      latch.Unlock();
    });
    sched.Spawn([&] {
      latch.Lock();  // spins; CoopYield hands the core to the holder
      critical_done = true;
      latch.Unlock();
    });
  });
  EXPECT_TRUE(critical_done);
  EXPECT_GT(sched.GetStats().spin_yields, 0u);
}

TEST(SchedTest, ResumeLagFeedsSchedTelemetry) {
  // Five tasks with identical (cpu, wire) rhythm: the core is contended
  // at every resume point, so resume lag lands in sched.resume_lag_ns and
  // park/spawn totals land in the global metrics snapshot.
  obs::Telemetry::Instance().Reset();
  obs::ObsConfig::SetEnabled(true);
  SimClock::Reset();
  {
    Scheduler sched;
    sched.Run([&] {
      for (int d = 0; d < 5; d++) {
        sched.Spawn([&] {
          for (int i = 0; i < 4; i++) SimCharge(400, 1'000);
        });
      }
    });
    const auto metrics = GlobalMetrics().Snapshot();
    EXPECT_GE(metrics.at("sched.tasks_spawned"), 6u);
    EXPECT_GT(metrics.at("sched.parks"), 0u);
    EXPECT_GE(metrics.at("sched.depth_hwm"), 5u);
  }
  const auto hists = obs::Telemetry::Instance().SnapshotHistograms();
  const auto it = hists.find("sched.resume_lag_ns");
  ASSERT_NE(it, hists.end());
  EXPECT_GT(it->second.count(), 0u);
  obs::ObsConfig::SetEnabled(false);
}

// ---------------------------------------------------------------------------
// Per-task DsmClient scratch (regression: no aliasing between interleaved
// tasks on one worker thread)
// ---------------------------------------------------------------------------

TEST(SchedScratchTest, InterleavedTasksNeverAliasScratch) {
  SimClock::Reset();
  Scheduler sched;
  const void* id_a_first = nullptr;
  const void* id_a_second = nullptr;
  const void* id_b = nullptr;
  sched.Run([&] {
    sched.Spawn([&] {
      id_a_first = dsm::internal::ScratchIdForTest();
      SimWait(SimClock::Now() + 1'000);  // B interleaves here
      id_a_second = dsm::internal::ScratchIdForTest();
    });
    sched.Spawn([&] { id_b = dsm::internal::ScratchIdForTest(); });
  });
  ASSERT_NE(id_a_first, nullptr);
  ASSERT_NE(id_b, nullptr);
  // Stable across a park, distinct across tasks on the same OS thread's
  // scheduler — the property the old thread_local scratch violated.
  EXPECT_EQ(id_a_first, id_a_second);
  EXPECT_NE(id_a_first, id_b);
}

TEST(SchedScratchTest, FinishedTasksRecycleScratchThroughFreelist) {
  SimClock::Reset();
  const void* first_task_id = nullptr;
  const void* second_task_id = nullptr;
  Scheduler sched;
  sched.Run([&] {
    sched.Spawn([&] { first_task_id = dsm::internal::ScratchIdForTest(); });
  });
  // The finished task's scratch went back to the pool (it either grew the
  // freelist or recycled a pooled entry taken at task start).
  EXPECT_GE(dsm::internal::ScratchFreelistSizeForTest(), 1u);
  Scheduler sched2;
  sched2.Run([&] {
    sched2.Spawn(
        [&] { second_task_id = dsm::internal::ScratchIdForTest(); });
  });
  // LIFO freelist: the follow-up task reuses the finished task's scratch.
  EXPECT_EQ(first_task_id, second_task_id);
}

TEST(SchedScratchTest, PlainThreadKeepsThreadLocalScratch) {
  const void* a = dsm::internal::ScratchIdForTest();
  const void* b = dsm::internal::ScratchIdForTest();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, nullptr);
}

// ---------------------------------------------------------------------------
// All six CC protocols at in-flight depth {1, 4, 32}
// ---------------------------------------------------------------------------

struct DepthParam {
  std::string name;
  txn::CcOptions cc;
  uint32_t depth;
};

std::vector<DepthParam> AllProtocolDepths() {
  struct Proto {
    const char* name;
    txn::CcProtocolKind kind;
    txn::TwoPlLockMode mode;
  };
  const Proto kProtos[] = {
      {"TwoPlNoWait", txn::CcProtocolKind::kTwoPlNoWait,
       txn::TwoPlLockMode::kExclusiveOnly},
      {"TwoPlNoWaitSharedEx", txn::CcProtocolKind::kTwoPlNoWait,
       txn::TwoPlLockMode::kSharedExclusive},
      {"TwoPlWaitDie", txn::CcProtocolKind::kTwoPlWaitDie,
       txn::TwoPlLockMode::kExclusiveOnly},
      {"Occ", txn::CcProtocolKind::kOcc, txn::TwoPlLockMode::kExclusiveOnly},
      {"Tso", txn::CcProtocolKind::kTso, txn::TwoPlLockMode::kExclusiveOnly},
      {"Mvcc", txn::CcProtocolKind::kMvcc, txn::TwoPlLockMode::kExclusiveOnly},
  };
  std::vector<DepthParam> out;
  for (const Proto& p : kProtos) {
    for (uint32_t depth : {1u, 4u, 32u}) {
      txn::CcOptions cc;
      cc.protocol = p.kind;
      cc.lock_mode = p.mode;
      out.push_back({std::string(p.name) + "Depth" + std::to_string(depth),
                     cc, depth});
    }
  }
  return out;
}

class SchedProtocolTest : public ::testing::TestWithParam<DepthParam> {};

TEST_P(SchedProtocolTest, CommitsUnderMultiplexedLanes) {
  const DepthParam& param = GetParam();
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;
  core::DbOptions dopts;
  dopts.architecture = core::Architecture::kNoCacheNoSharding;
  dopts.cc = param.cc;
  core::DsmDb db(copts, dopts);
  std::vector<core::ComputeNode*> nodes = {db.AddComputeNode(),
                                           db.AddComputeNode()};
  const core::Table* table = *db.CreateTable("ycsb", {64, 4'096});
  ASSERT_TRUE(db.FinishSetup().ok());

  workload::DriverOptions opts;
  opts.threads_per_node = 2;
  opts.txns_per_thread = 60;
  opts.in_flight_depth = param.depth;
  workload::YcsbOptions yopts;
  yopts.num_keys = 4'096;
  yopts.write_fraction = 0.3;
  yopts.zipf_theta = 0.7;

  workload::DriverResult result = workload::RunDriver(
      nodes, opts,
      [&](core::ComputeNode* node, uint32_t lane, Random64&) {
        // One workload instance per lane (each lane is its own OS
        // thread); distinct seeds keep lanes decorrelated.
        thread_local std::unique_ptr<workload::YcsbWorkload> wl;
        if (!wl) {
          wl = std::make_unique<workload::YcsbWorkload>(yopts, lane + 1);
        }
        Result<core::TxnResult> r = node->ExecuteOneShot(*table, wl->NextTxn());
        EXPECT_TRUE(r.ok() || r.status().IsAborted()) << r.status();
        return r.ok() && r->committed;
      });

  // The attempt budget is per worker, independent of depth.
  EXPECT_EQ(result.attempts, 4u * 60u);
  EXPECT_GT(result.committed, 0u);
  EXPECT_GT(result.throughput_tps, 0.0);
  EXPECT_EQ(result.latency_ns.count(), result.attempts);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllDepths, SchedProtocolTest,
    ::testing::ValuesIn(AllProtocolDepths()),
    [](const ::testing::TestParamInfo<DepthParam>& info) {
      return info.param.name;
    });

TEST(SchedDepthSpeedupTest, DepthHidesRttOnReadMostlyWorkload) {
  // Single worker, read-mostly YCSB: depth 8 must clearly beat depth 1 in
  // simulated throughput (the full-strength >= 3x assertion lives in the
  // bench_scalability CI smoke; this is the fast correctness-side check).
  auto run = [&](uint32_t depth) {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 64 << 20;
    core::DbOptions dopts;
    dopts.architecture = core::Architecture::kNoCacheNoSharding;
    core::DsmDb db(copts, dopts);
    std::vector<core::ComputeNode*> nodes = {db.AddComputeNode()};
    const core::Table* table = *db.CreateTable("ycsb", {64, 8'192});
    EXPECT_TRUE(db.FinishSetup().ok());
    workload::DriverOptions opts;
    opts.threads_per_node = 1;
    opts.txns_per_thread = 400;
    opts.in_flight_depth = depth;
    workload::YcsbOptions yopts;
    yopts.num_keys = 8'192;
    yopts.write_fraction = 0.05;
    yopts.zipf_theta = 0.5;
    workload::DriverResult r = workload::RunDriver(
        nodes, opts,
        [&](core::ComputeNode* node, uint32_t lane, Random64&) {
          thread_local std::unique_ptr<workload::YcsbWorkload> wl;
          if (!wl) {
            wl = std::make_unique<workload::YcsbWorkload>(yopts, lane + 1);
          }
          Result<core::TxnResult> res =
              node->ExecuteOneShot(*table, wl->NextTxn());
          return res.ok() && res->committed;
        });
    return r.throughput_tps;
  };
  const double d1 = run(1);
  const double d8 = run(8);
  EXPECT_GT(d1, 0.0);
  EXPECT_GE(d8 / d1, 2.0) << "depth 8 = " << d8 << " tps, depth 1 = " << d1
                          << " tps";
}

}  // namespace
}  // namespace dsmdb::rt
