#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "index/sherman_btree.h"

namespace dsmdb::index {
namespace {

class BTreeTest : public ::testing::TestWithParam<bool /*cache*/> {
 protected:
  BTreeTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 128 << 20;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    meta_ = *ShermanBTree::Create(client_.get());
    BTreeOptions opts;
    opts.cache_internal_nodes = GetParam();
    tree_ = std::make_unique<ShermanBTree>(client_.get(), meta_, opts);
    SimClock::Reset();
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
  dsm::GlobalAddress meta_;
  std::unique_ptr<ShermanBTree> tree_;
};

TEST_P(BTreeTest, EmptyTreeSearchIsNotFound) {
  EXPECT_TRUE(tree_->Search(42).status().IsNotFound());
}

TEST_P(BTreeTest, InsertAndSearchFewKeys) {
  ASSERT_TRUE(tree_->Insert(10, 100).ok());
  ASSERT_TRUE(tree_->Insert(20, 200).ok());
  ASSERT_TRUE(tree_->Insert(5, 50).ok());
  EXPECT_EQ(*tree_->Search(10), 100u);
  EXPECT_EQ(*tree_->Search(20), 200u);
  EXPECT_EQ(*tree_->Search(5), 50u);
  EXPECT_TRUE(tree_->Search(15).status().IsNotFound());
}

TEST_P(BTreeTest, InsertOverwritesExistingKey) {
  ASSERT_TRUE(tree_->Insert(7, 1).ok());
  ASSERT_TRUE(tree_->Insert(7, 2).ok());
  EXPECT_EQ(*tree_->Search(7), 2u);
}

TEST_P(BTreeTest, ManyKeysWithSplits) {
  const uint64_t n = 5'000;  // forces multi-level splits (cap 32)
  Random64 rng(13);
  std::map<uint64_t, uint64_t> expected;
  for (uint64_t i = 0; i < n; i++) {
    const uint64_t key = rng.Next() | 1;  // avoid key 0 collisions
    expected[key] = i + 1;
    ASSERT_TRUE(tree_->Insert(key, i + 1).ok());
  }
  EXPECT_GT(tree_->stats().splits.load(), n / 64);
  for (const auto& [key, value] : expected) {
    Result<uint64_t> got = tree_->Search(key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    EXPECT_EQ(*got, value);
  }
}

TEST_P(BTreeTest, SequentialInsertAscending) {
  for (uint64_t k = 1; k <= 2'000; k++) {
    ASSERT_TRUE(tree_->Insert(k, k * 10).ok());
  }
  for (uint64_t k = 1; k <= 2'000; k++) {
    ASSERT_EQ(*tree_->Search(k), k * 10);
  }
}

TEST_P(BTreeTest, SequentialInsertDescending) {
  for (uint64_t k = 2'000; k >= 1; k--) {
    ASSERT_TRUE(tree_->Insert(k, k).ok());
  }
  for (uint64_t k = 1; k <= 2'000; k++) {
    ASSERT_EQ(*tree_->Search(k), k);
  }
}

TEST_P(BTreeTest, DeleteRemovesKey) {
  for (uint64_t k = 1; k <= 100; k++) {
    ASSERT_TRUE(tree_->Insert(k, k).ok());
  }
  ASSERT_TRUE(tree_->Delete(50).ok());
  EXPECT_TRUE(tree_->Search(50).status().IsNotFound());
  EXPECT_EQ(*tree_->Search(49), 49u);
  EXPECT_EQ(*tree_->Search(51), 51u);
  EXPECT_TRUE(tree_->Delete(50).IsNotFound());
}

TEST_P(BTreeTest, ScanReturnsSortedRange) {
  for (uint64_t k = 1; k <= 500; k++) {
    ASSERT_TRUE(tree_->Insert(k * 2, k).ok());  // even keys
  }
  Result<std::vector<std::pair<uint64_t, uint64_t>>> out =
      tree_->Scan(100, 50);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 50u);
  EXPECT_EQ((*out)[0].first, 100u);
  for (size_t i = 1; i < out->size(); i++) {
    EXPECT_LT((*out)[i - 1].first, (*out)[i].first);
  }
  EXPECT_EQ(out->back().first, 198u);
}

TEST_P(BTreeTest, ScanPastEndStopsCleanly) {
  for (uint64_t k = 1; k <= 10; k++) ASSERT_TRUE(tree_->Insert(k, k).ok());
  Result<std::vector<std::pair<uint64_t, uint64_t>>> out =
      tree_->Scan(5, 100);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 6u);  // keys 5..10
}

TEST_P(BTreeTest, ConcurrentDisjointInserts) {
  ParallelFor(8, [&](size_t t) {
    SimClock::Reset();
    for (uint64_t i = 0; i < 400; i++) {
      const uint64_t key = t * 1'000'000 + i + 1;
      ASSERT_TRUE(tree_->Insert(key, key).ok());
    }
  });
  for (size_t t = 0; t < 8; t++) {
    for (uint64_t i = 0; i < 400; i++) {
      const uint64_t key = t * 1'000'000 + i + 1;
      ASSERT_EQ(*tree_->Search(key), key);
    }
  }
}

TEST_P(BTreeTest, ConcurrentInterleavedInsertsAndReads) {
  // Writers insert; readers search concurrently and must never see a
  // corrupted node (validated reads retry internally).
  std::atomic<bool> stop{false};
  std::atomic<bool> error{false};
  std::thread reader([&] {
    SimClock::Reset();
    Random64 rng(3);
    while (!stop.load()) {
      Result<uint64_t> r = tree_->Search(rng.Uniform(4'000) + 1);
      if (!r.ok() && !r.status().IsNotFound()) error = true;
    }
  });
  ParallelFor(4, [&](size_t t) {
    SimClock::Reset();
    for (uint64_t i = 0; i < 500; i++) {
      const uint64_t key = i * 4 + t + 1;
      if (!tree_->Insert(key, key).ok()) error = true;
    }
  });
  stop = true;
  reader.join();
  ASSERT_FALSE(error.load());
  for (uint64_t key = 1; key <= 2'000; key++) {
    ASSERT_EQ(*tree_->Search(key), key) << key;
  }
}

TEST_P(BTreeTest, MultipleHandlesShareOneTree) {
  // A second compute node opens the same tree via the meta address.
  dsm::DsmClient client2(cluster_.get(), cluster_->AddComputeNode("cn1"));
  BTreeOptions opts;
  opts.cache_internal_nodes = GetParam();
  ShermanBTree tree2(&client2, meta_, opts);

  ASSERT_TRUE(tree_->Insert(123, 456).ok());
  EXPECT_EQ(*tree2.Search(123), 456u);
  ASSERT_TRUE(tree2.Insert(321, 654).ok());
  EXPECT_EQ(*tree_->Search(321), 654u);
}

TEST_P(BTreeTest, StaleCacheIsCorrectedAfterRemoteSplits) {
  if (!GetParam()) GTEST_SKIP() << "cache-only scenario";
  dsm::DsmClient client2(cluster_.get(), cluster_->AddComputeNode("cn1"));
  ShermanBTree tree2(&client2, meta_, BTreeOptions{});

  // Handle 1 warms its cache.
  for (uint64_t k = 1; k <= 200; k++) ASSERT_TRUE(tree_->Insert(k, k).ok());
  ASSERT_TRUE(tree_->Search(100).ok());
  // Handle 2 splits nodes massively behind handle 1's back.
  for (uint64_t k = 201; k <= 4'000; k++) {
    ASSERT_TRUE(tree2.Insert(k, k).ok());
  }
  // Handle 1 must still find every key (B-link chases fix staleness).
  for (uint64_t k = 1; k <= 4'000; k += 7) {
    ASSERT_EQ(*tree_->Search(k), k) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(CacheOnOff, BTreeTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "cached" : "uncached";
                         });

TEST(BTreeCacheTest, InternalCacheCutsRoundTrips) {
  dsm::ClusterOptions copts;
  copts.memory_node.capacity_bytes = 64 << 20;
  dsm::Cluster cluster(copts);
  dsm::DsmClient client(&cluster, cluster.AddComputeNode("cn0"));
  dsm::GlobalAddress meta = *ShermanBTree::Create(&client);

  BTreeOptions cached;
  cached.cache_internal_nodes = true;
  ShermanBTree tree(&client, meta, cached);
  for (uint64_t k = 1; k <= 3'000; k++) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  // Warm pass.
  Random64 rng(5);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(tree.Search(rng.Uniform(3'000) + 1).ok());
  }
  cluster.fabric().ResetStats();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(tree.Search(rng.Uniform(3'000) + 1).ok());
  }
  const uint64_t cached_reads = cluster.fabric().TotalStats().RoundTrips();

  BTreeOptions uncached;
  uncached.cache_internal_nodes = false;
  ShermanBTree naive(&client, meta, uncached);
  cluster.fabric().ResetStats();
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(naive.Search(rng.Uniform(3'000) + 1).ok());
  }
  const uint64_t naive_reads = cluster.fabric().TotalStats().RoundTrips();

  // Sherman's claim: caching internal nodes removes most round trips —
  // lookups drop to ~1 RTT (leaf only) vs height RTTs.
  EXPECT_LT(cached_reads * 2, naive_reads);
  EXPECT_GT(tree.CachedNodes(), 0u);
}

}  // namespace
}  // namespace dsmdb::index
