#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "index/lsm_index.h"

namespace dsmdb::index {
namespace {

class LsmTest : public ::testing::TestWithParam<bool /*offload*/> {
 protected:
  LsmTest() {
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 128 << 20;
    cluster_ = std::make_unique<dsm::Cluster>(copts);
    client_ = std::make_unique<dsm::DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  LsmOptions SmallOptions() {
    LsmOptions opts;
    opts.memtable_entries = 64;
    opts.block_entries = 16;
    opts.max_runs = 3;
    opts.offload_compaction = GetParam();
    return opts;
  }

  std::unique_ptr<dsm::Cluster> cluster_;
  std::unique_ptr<dsm::DsmClient> client_;
};

TEST_P(LsmTest, PutGetFromMemtable) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  ASSERT_TRUE(lsm.Put(5, 50).ok());
  EXPECT_EQ(*lsm.Get(5), 50u);
  EXPECT_EQ(lsm.stats().memtable_hits.load(), 1u);
  EXPECT_TRUE(lsm.Get(6).status().IsNotFound());
}

TEST_P(LsmTest, GetAfterFlushReadsRun) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  for (uint64_t k = 1; k <= 40; k++) ASSERT_TRUE(lsm.Put(k, k * 3).ok());
  ASSERT_TRUE(lsm.Flush().ok());
  EXPECT_EQ(lsm.MemtableSize(), 0u);
  EXPECT_EQ(lsm.NumRuns(), 1u);
  for (uint64_t k = 1; k <= 40; k++) {
    ASSERT_EQ(*lsm.Get(k), k * 3) << k;
  }
  EXPECT_GT(lsm.stats().block_reads.load(), 0u);
}

TEST_P(LsmTest, NewerRunShadowsOlder) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  ASSERT_TRUE(lsm.Put(9, 1).ok());
  ASSERT_TRUE(lsm.Flush().ok());
  ASSERT_TRUE(lsm.Put(9, 2).ok());
  ASSERT_TRUE(lsm.Flush().ok());
  EXPECT_EQ(lsm.NumRuns(), 2u);
  EXPECT_EQ(*lsm.Get(9), 2u);
}

TEST_P(LsmTest, DeleteTombstonesAcrossRuns) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  ASSERT_TRUE(lsm.Put(7, 70).ok());
  ASSERT_TRUE(lsm.Flush().ok());
  ASSERT_TRUE(lsm.Delete(7).ok());
  EXPECT_TRUE(lsm.Get(7).status().IsNotFound());
  ASSERT_TRUE(lsm.Flush().ok());
  EXPECT_TRUE(lsm.Get(7).status().IsNotFound());  // tombstone in run
  ASSERT_TRUE(lsm.Compact().ok());
  EXPECT_TRUE(lsm.Get(7).status().IsNotFound());  // dropped at compaction
}

TEST_P(LsmTest, CompactionMergesRunsAndPreservesData) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  std::map<uint64_t, uint64_t> expected;
  Random64 rng(11);
  for (int i = 0; i < 500; i++) {
    const uint64_t k = rng.Uniform(300) + 1;
    const uint64_t v = rng.Next() | 1;
    if (v == UINT64_MAX) continue;
    expected[k] = v;
    ASSERT_TRUE(lsm.Put(k, v).ok());
  }
  ASSERT_TRUE(lsm.Flush().ok());
  ASSERT_TRUE(lsm.Compact().ok());
  EXPECT_EQ(lsm.NumRuns(), 1u);
  EXPECT_GE(lsm.stats().compactions.load(), 1u);
  for (const auto& [k, v] : expected) {
    ASSERT_EQ(*lsm.Get(k), v) << k;
  }
}

TEST_P(LsmTest, AutoFlushAndCompactUnderLoad) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  std::map<uint64_t, uint64_t> expected;
  Random64 rng(13);
  for (int i = 0; i < 2'000; i++) {
    const uint64_t k = rng.Uniform(5'000) + 1;
    const uint64_t v = (rng.Next() | 1) & ~(1ULL << 63);
    expected[k] = v;
    ASSERT_TRUE(lsm.Put(k, v).ok());
  }
  EXPECT_LE(lsm.NumRuns(), SmallOptions().max_runs + 1);
  EXPECT_GT(lsm.stats().flushes.load(), 10u);
  Random64 probe(17);
  for (int i = 0; i < 300; i++) {
    const uint64_t k = probe.Uniform(5'000) + 1;
    auto it = expected.find(k);
    Result<uint64_t> got = lsm.Get(k);
    if (it == expected.end()) {
      EXPECT_TRUE(got.status().IsNotFound()) << k;
    } else {
      ASSERT_TRUE(got.ok()) << k << " " << got.status();
      EXPECT_EQ(*got, it->second) << k;
    }
  }
}

TEST_P(LsmTest, BloomFiltersSkipMostAbsentProbes) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  for (uint64_t k = 1; k <= 500; k++) ASSERT_TRUE(lsm.Put(k, k).ok());
  ASSERT_TRUE(lsm.Flush().ok());
  lsm.stats().bloom_skips.store(0);
  lsm.stats().block_reads.store(0);
  // Probe absent keys: blooms should answer most without a round trip.
  for (uint64_t k = 1'000'000; k < 1'000'500; k++) {
    EXPECT_TRUE(lsm.Get(k).status().IsNotFound());
  }
  const uint64_t skips = lsm.stats().bloom_skips.load();
  const uint64_t reads = lsm.stats().block_reads.load();
  EXPECT_GT(skips, 400u);
  EXPECT_LT(reads, 100u);
}

TEST_P(LsmTest, LocalMetadataIsSmallFractionOfData) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  for (uint64_t k = 1; k <= 2'000; k++) ASSERT_TRUE(lsm.Put(k, k).ok());
  ASSERT_TRUE(lsm.Flush().ok());
  const size_t data_bytes = 2'000 * 16;
  EXPECT_LT(lsm.LocalMetadataBytes(), data_bytes / 4);
  EXPECT_GT(lsm.LocalMetadataBytes(), 0u);
}

TEST_P(LsmTest, ReservedValuesRejected) {
  LsmIndex lsm(client_.get(), 0, SmallOptions());
  EXPECT_TRUE(lsm.Put(1, 0).IsInvalidArgument());
  EXPECT_TRUE(lsm.Put(1, UINT64_MAX).IsInvalidArgument());
}

INSTANTIATE_TEST_SUITE_P(LocalAndOffloaded, LsmTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "offloaded_compaction"
                                             : "local_compaction";
                         });

TEST(LsmCompactionCostTest, OffloadMovesFarFewerBytes) {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 1;
  copts.memory_node.capacity_bytes = 128 << 20;
  dsm::Cluster cluster(copts);
  dsm::DsmClient client(&cluster, cluster.AddComputeNode("cn0"));

  auto fill = [&](LsmIndex& lsm) {
    Random64 rng(5);
    for (int i = 0; i < 4'000; i++) {
      (void)lsm.Put(rng.Next() | 1, 7);
    }
    (void)lsm.Flush();
  };

  LsmOptions local_opts;
  local_opts.memtable_entries = 512;
  local_opts.max_runs = 100;  // no auto-compaction
  LsmIndex local(&client, 0, local_opts);
  fill(local);
  cluster.fabric().ResetStats();
  ASSERT_TRUE(local.Compact().ok());
  const auto local_stats = cluster.fabric().TotalStats();

  LsmOptions off_opts = local_opts;
  off_opts.offload_compaction = true;
  LsmIndex offloaded(&client, 0, off_opts);
  fill(offloaded);
  cluster.fabric().ResetStats();
  ASSERT_TRUE(offloaded.Compact().ok());
  const auto off_stats = cluster.fabric().TotalStats();

  // The paper's offload argument: near-data compaction moves ~no data.
  EXPECT_LT(off_stats.bytes_read + off_stats.bytes_written,
            (local_stats.bytes_read + local_stats.bytes_written) / 4);
  // And both end up serving reads correctly.
  EXPECT_TRUE(local.Get(123456789).status().IsNotFound());
}

}  // namespace
}  // namespace dsmdb::index
