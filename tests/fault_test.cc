#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/sim_clock.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "dsm/lease.h"
#include "rdma/fault.h"
#include "rt/scheduler.h"
#include "txn/rdma_lock.h"
#include "txn/record_format.h"

namespace dsmdb {
namespace {

using dsm::Cluster;
using dsm::ClusterOptions;
using dsm::DsmClient;
using dsm::GlobalAddress;
using dsm::LeaseManager;
using rdma::FaultInjector;
using rdma::FaultOptions;

uint64_t FaultCounter(const char* name) {
  return GlobalMetrics().GetCounter(name)->Get();
}

class FaultFabricTest : public ::testing::Test {
 protected:
  FaultFabricTest() {
    ClusterOptions opts;
    opts.num_memory_nodes = 3;
    opts.memory_node.capacity_bytes = 8 << 20;
    cluster_ = std::make_unique<Cluster>(opts);
    client_ = std::make_unique<DsmClient>(
        cluster_.get(), cluster_->AddComputeNode("cn0"));
    SimClock::Reset();
  }

  ~FaultFabricTest() override {
    cluster_->fabric().SetFaultInjector(nullptr);
  }

  void Install(FaultOptions fopts) {
    injector_ = std::make_unique<FaultInjector>(std::move(fopts));
    cluster_->fabric().SetFaultInjector(injector_.get());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DsmClient> client_;
  std::unique_ptr<FaultInjector> injector_;
};

TEST(FaultInjectorTest, SameSeedSameSingleThreadDecisions) {
  FaultOptions a;
  a.seed = 42;
  a.verb_loss_prob = 0.3;
  FaultOptions b = a;
  FaultInjector ia(std::move(a));
  FaultInjector ib(std::move(b));
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ(ia.OnVerb(0, 1, FaultInjector::Verb::kRead).drop,
              ib.OnVerb(0, 1, FaultInjector::Verb::kRead).drop)
        << "flip " << i;
  }
  EXPECT_GT(ia.verbs_dropped(), 0u);
  EXPECT_LT(ia.verbs_dropped(), 200u);
}

TEST(FaultInjectorTest, TimedEventsFireOnceInOrder) {
  int fired_a = 0;
  int fired_b = 0;
  FaultOptions fopts;
  fopts.events.push_back(
      rdma::FaultEvent{2000, [&] { fired_b++; }, "b"});
  fopts.events.push_back(
      rdma::FaultEvent{1000, [&] { fired_a++; }, "a"});
  FaultInjector inj(std::move(fopts));
  EXPECT_FALSE(inj.AllEventsFired());
  inj.FireDueEvents(500);
  EXPECT_EQ(fired_a + fired_b, 0);
  inj.FireDueEvents(1500);
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 0);
  inj.FireDueEvents(10'000);
  inj.FireDueEvents(10'000);  // idempotent
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
  EXPECT_TRUE(inj.AllEventsFired());
}

TEST_F(FaultFabricTest, StragglerWindowScalesWireCost) {
  GlobalAddress addr = *client_->Alloc(64, 0);
  uint64_t v = 7;
  SimClock::Reset();
  ASSERT_TRUE(client_->Read(addr, &v, 8).ok());
  const uint64_t base_cost = SimClock::Now();
  ASSERT_GT(base_cost, 0u);

  FaultOptions fopts;
  fopts.stragglers.push_back(rdma::StragglerWindow{
      cluster_->MemFabricId(0), 0, UINT64_MAX, 3.0});
  Install(std::move(fopts));
  SimClock::Reset();
  ASSERT_TRUE(client_->Read(addr, &v, 8).ok());
  EXPECT_EQ(SimClock::Now(), 3 * base_cost);

  // Other nodes are unaffected.
  GlobalAddress other = *client_->Alloc(64, 1);
  SimClock::Reset();
  ASSERT_TRUE(client_->Read(other, &v, 8).ok());
  EXPECT_EQ(SimClock::Now(), base_cost);
}

TEST_F(FaultFabricTest, ReadRetriesThroughTransientLossWindow) {
  GlobalAddress addr = *client_->Alloc(64, 0);
  const uint64_t want = 0xABCD;
  ASSERT_TRUE(client_->Write(addr, &want, 8).ok());

  // 100% loss until t=50'000, then clean. The retry loop must park through
  // the window and succeed without surfacing an error.
  FaultOptions fopts;
  fopts.verb_loss_prob = 1.0;
  fopts.events.push_back(rdma::FaultEvent{
      50'000, [&] { injector_->SetVerbLossProb(0.0); }, "heal"});
  Install(std::move(fopts));

  const uint64_t retries_before = FaultCounter("fault.retries");
  SimClock::Reset();
  uint64_t got = 0;
  ASSERT_TRUE(client_->Read(addr, &got, 8).ok());
  EXPECT_EQ(got, want);
  EXPECT_GE(SimClock::Now(), 50'000u);
  EXPECT_GT(FaultCounter("fault.retries"), retries_before);
  EXPECT_GT(injector_->verbs_dropped(), 0u);
}

TEST_F(FaultFabricTest, RetryBudgetExhaustsToTimedOut) {
  GlobalAddress addr = *client_->Alloc(64, 0);
  FaultOptions fopts;
  fopts.verb_loss_prob = 1.0;
  Install(std::move(fopts));

  dsm::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_base_ns = 1000;
  policy.backoff_cap_ns = 4000;
  client_->set_retry_policy(policy);

  const uint64_t retries_before = FaultCounter("fault.retries");
  uint64_t got = 0;
  Status s = client_->Read(addr, &got, 8);
  EXPECT_TRUE(s.IsTimedOut()) << s;
  EXPECT_EQ(FaultCounter("fault.retries") - retries_before, 3u);
}

TEST_F(FaultFabricTest, LostWriteAckStillAppliedAndIdempotent) {
  GlobalAddress addr = *client_->Alloc(64, 0);
  FaultOptions fopts;
  fopts.verb_loss_prob = 1.0;
  Install(std::move(fopts));
  dsm::RetryPolicy policy;
  policy.max_attempts = 2;
  client_->set_retry_policy(policy);

  const uint64_t v = 555;
  EXPECT_TRUE(client_->Write(addr, &v, 8).IsTimedOut());

  // Ack loss, not request loss: the store landed.
  cluster_->fabric().SetFaultInjector(nullptr);
  uint64_t got = 0;
  ASSERT_TRUE(client_->Read(addr, &got, 8).ok());
  EXPECT_EQ(got, v);
}

TEST_F(FaultFabricTest, LostCasNeverExecuted) {
  GlobalAddress addr = *client_->Alloc(64, 0);
  FaultOptions fopts;
  fopts.per_node_loss.assign(8, -1.0);
  fopts.per_node_loss[cluster_->MemFabricId(0)] = 1.0;
  Install(std::move(fopts));
  dsm::RetryPolicy policy;
  policy.max_attempts = 2;
  client_->set_retry_policy(policy);

  EXPECT_TRUE(client_->CompareAndSwap(addr, 0, 99).status().IsTimedOut());
  cluster_->fabric().SetFaultInjector(nullptr);
  uint64_t got = 123;
  ASSERT_TRUE(client_->Read(addr, &got, 8).ok());
  EXPECT_EQ(got, 0u) << "a lost CAS must not have executed";

  // Per-node override: node 1 is unaffected even with the injector on.
  cluster_->fabric().SetFaultInjector(injector_.get());
  GlobalAddress other = *client_->Alloc(64, 1);
  EXPECT_TRUE(client_->CompareAndSwap(other, 0, 7).ok());
}

// A drop puts the pipeline's flow to that target into the QP error state:
// later ops to the same target flush without executing (a real RC QP never
// executes a WR past one whose retransmit budget was exhausted), other
// targets are unaffected, and Reset() models reconnecting the QP. This is
// what keeps an install sequence (value write -> version bump -> unlock)
// from being executed with a hole in the middle — the isolation oracle
// caught exactly that as an OCC lost update before flush semantics existed.
TEST_F(FaultFabricTest, LostVerbFlushesLaterPipelineOpsToSameTarget) {
  GlobalAddress a0 = *client_->Alloc(64, 0);
  GlobalAddress a1 = *client_->Alloc(64, 1);
  FaultOptions fopts;
  fopts.per_node_loss.assign(8, -1.0);
  fopts.per_node_loss[cluster_->MemFabricId(0)] = 1.0;
  Install(std::move(fopts));

  dsm::DsmPipeline pipe(client_.get());
  rdma::WrId cas = pipe.Cas(a0, 0, 99);  // dropped: flow to node 0 breaks
  // The flow stays broken even after the injector is gone.
  cluster_->fabric().SetFaultInjector(nullptr);
  const uint64_t v = 777;
  rdma::WrId w0 = pipe.Write(a0, &v, 8);
  rdma::WrId w1 = pipe.Write(a1, &v, 8);
  EXPECT_FALSE(pipe.WaitAll().ok());
  EXPECT_TRUE(pipe.status(cas).IsTimedOut());
  EXPECT_TRUE(pipe.status(w0).IsTimedOut());
  EXPECT_TRUE(pipe.status(w1).ok());

  uint64_t got = 123;
  ASSERT_TRUE(client_->Read(a0, &got, 8).ok());
  EXPECT_EQ(got, 0u) << "flushed write must not execute past the lost CAS";
  ASSERT_TRUE(client_->Read(a1, &got, 8).ok());
  EXPECT_EQ(got, v) << "an unrelated target's flow must be unaffected";

  pipe.Reset();
  pipe.Write(a0, &v, 8);
  ASSERT_TRUE(pipe.WaitAll().ok());
  ASSERT_TRUE(client_->Read(a0, &got, 8).ok());
  EXPECT_EQ(got, v) << "Reset() reconnects the flow";
}

class FaultFenceTest : public FaultFabricTest {};

TEST_F(FaultFenceTest, StaleIncarnationInsteadOfSilentZeroRead) {
  GlobalAddress addr = *client_->Alloc(64, 1);
  const uint64_t v = 31337;
  ASSERT_TRUE(client_->Write(addr, &v, 8).ok());

  cluster_->CrashMemoryNode(1);
  cluster_->RecoverMemoryNode(1);
  // Re-establish the allocation so the address resolves on the new
  // incarnation — the fence must still reject the unrefreshed client.
  DsmClient fresh(cluster_.get(), cluster_->AddComputeNode("cn1"));
  GlobalAddress again = *fresh.Alloc(64, 1);
  ASSERT_EQ(again.offset, addr.offset);

  uint64_t got = 0xDEAD;
  Status s = client_->Read(addr, &got, 8);
  EXPECT_TRUE(s.IsStaleIncarnation()) << s;
  EXPECT_EQ(got, 0xDEADu) << "fenced read must not touch the buffer";

  // Writes, atomics and RPC ops are fenced the same way.
  EXPECT_TRUE(client_->Write(addr, &v, 8).IsStaleIncarnation());
  EXPECT_TRUE(
      client_->CompareAndSwap(addr, 0, 1).status().IsStaleIncarnation());
  EXPECT_TRUE(client_->Alloc(64, 1).status().IsStaleIncarnation());

  // Re-binding accepts the new world (now empty).
  client_->RefreshIncarnation(1);
  ASSERT_TRUE(client_->Read(addr, &got, 8).ok());
  EXPECT_EQ(got, 0u);
}

TEST_F(FaultFenceTest, PipelinePostsAreFencedToo) {
  GlobalAddress addr = *client_->Alloc(64, 1);
  cluster_->CrashMemoryNode(1);
  cluster_->RecoverMemoryNode(1);

  uint64_t got = 0;
  dsm::DsmPipeline pipe(client_.get());
  const rdma::WrId cas = pipe.Cas(addr, 0, 42);
  pipe.Read(addr, &got, 8);
  Status s = pipe.WaitAll();
  EXPECT_TRUE(s.IsStaleIncarnation()) << s;
  EXPECT_TRUE(pipe.status(cas).IsStaleIncarnation());
}

TEST_F(FaultFenceTest, ReadAnyFailsOverToSurvivingReplica) {
  GlobalAddress primary = *client_->Alloc(64, 0);
  GlobalAddress replica = *client_->Alloc(64, 1);
  const uint64_t v = 777;
  ASSERT_TRUE(
      client_->WriteAll({primary, replica}, &v, 8).ok());

  const uint64_t failovers_before = FaultCounter("fault.failovers");
  uint64_t got = 0;
  ASSERT_TRUE(client_->ReadAny({primary, replica}, &got, 8).ok());
  EXPECT_EQ(got, v);
  EXPECT_EQ(FaultCounter("fault.failovers"), failovers_before)
      << "primary served: no failover";

  cluster_->CrashMemoryNode(0);
  got = 0;
  ASSERT_TRUE(client_->ReadAny({primary, replica}, &got, 8).ok());
  EXPECT_EQ(got, v);
  EXPECT_EQ(FaultCounter("fault.failovers"), failovers_before + 1);

  // All replicas down -> the last transient error surfaces.
  cluster_->CrashMemoryNode(1);
  Status s = client_->ReadAny({primary, replica}, &got, 8);
  EXPECT_TRUE(s.IsUnavailable()) << s;
}

class FaultLeaseTest : public ::testing::Test {
 protected:
  FaultLeaseTest() {
    ClusterOptions opts;
    opts.num_memory_nodes = 2;
    opts.memory_node.capacity_bytes = 8 << 20;
    cluster_ = std::make_unique<Cluster>(opts);
    a_ = std::make_unique<DsmClient>(cluster_.get(),
                                     cluster_->AddComputeNode("a"));
    b_ = std::make_unique<DsmClient>(cluster_.get(),
                                     cluster_->AddComputeNode("b"));
    SimClock::Reset();
    table_ = *LeaseManager::CreateTable(a_.get());
    LeaseManager::Options lopts;
    lopts.table = table_;
    lopts.lease_ns = 100'000;
    lopts.heartbeat_interval_ns = 25'000;
    lopts.recheck_ns = 1'000;
    leases_a_ = std::make_unique<LeaseManager>(a_.get(), lopts);
    leases_b_ = std::make_unique<LeaseManager>(b_.get(), lopts);
    a_->SetLeaseManager(leases_a_.get());
    b_->SetLeaseManager(leases_b_.get());
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<DsmClient> a_;
  std::unique_ptr<DsmClient> b_;
  GlobalAddress table_;
  std::unique_ptr<LeaseManager> leases_a_;
  std::unique_ptr<LeaseManager> leases_b_;
};

TEST_F(FaultLeaseTest, HeartbeatKeepsLeaseFresh) {
  ASSERT_TRUE(leases_a_->Heartbeat().ok());
  EXPECT_FALSE(leases_b_->IsExpired(leases_a_->self_owner()));
  // Owners that never heartbeated are never "expired" (no lease, no
  // reclaim), and owner 0 marks an owner-less legacy lock.
  EXPECT_FALSE(leases_b_->IsExpired(leases_b_->self_owner()));
  EXPECT_FALSE(leases_b_->IsExpired(0));

  // Past the lease without another heartbeat: expired.
  rt::SimWait(SimClock::Now() + 200'000);
  EXPECT_TRUE(leases_b_->IsExpired(leases_a_->self_owner()));

  // A new heartbeat resurrects it.
  ASSERT_TRUE(leases_a_->Heartbeat().ok());
  rt::SimWait(SimClock::Now() + 2'000);  // past recheck_ns
  EXPECT_FALSE(leases_b_->IsExpired(leases_a_->self_owner()));
}

TEST_F(FaultLeaseTest, OrphanLockReclaimedAfterLeaseExpiry) {
  GlobalAddress word = *a_->Alloc(64, 0);
  ASSERT_TRUE(leases_a_->Heartbeat().ok());

  txn::RdmaSpinLock lock_a(a_.get());
  ASSERT_TRUE(lock_a.TryAcquire(word, /*ts=*/9).ok());
  // The stamped word carries A's owner id.
  uint64_t raw = 0;
  ASSERT_TRUE(b_->Read(word, &raw, 8).ok());
  EXPECT_EQ(txn::LockOwnerId(raw), a_->lock_owner_id());
  EXPECT_EQ(txn::LockHolderTs(raw), 9u);

  // While A's lease is fresh, B just sees Busy.
  txn::RdmaSpinLock lock_b(b_.get());
  EXPECT_TRUE(lock_b.TryAcquire(word, 11).IsBusy());

  // A "crashes" (stops heartbeating); after expiry B reclaims and wins.
  const uint64_t reclaimed_before =
      FaultCounter("fault.orphan_locks_reclaimed");
  rt::SimWait(SimClock::Now() + 300'000);
  ASSERT_TRUE(lock_b.TryAcquire(word, 11).ok());
  EXPECT_EQ(FaultCounter("fault.orphan_locks_reclaimed"),
            reclaimed_before + 1);
  ASSERT_TRUE(b_->Read(word, &raw, 8).ok());
  EXPECT_EQ(txn::LockHolderTs(raw), 11u);
  EXPECT_EQ(txn::LockOwnerId(raw), b_->lock_owner_id());

  // A's late release CAS fails benignly (word no longer matches).
  EXPECT_FALSE(lock_a.Release(word, 9).ok());
  ASSERT_TRUE(lock_b.Release(word, 11).ok());
}

TEST_F(FaultLeaseTest, OwnerlessLocksAreNeverReclaimed) {
  // No lease manager -> owner id 0 -> bit-identical legacy lock words.
  b_->SetLeaseManager(nullptr);
  EXPECT_EQ(b_->lock_owner_id(), 0u);
  GlobalAddress word = *a_->Alloc(64, 0);
  txn::RdmaSpinLock lock_b(b_.get());
  ASSERT_TRUE(lock_b.TryAcquire(word, 5).ok());
  uint64_t raw = 0;
  ASSERT_TRUE(a_->Read(word, &raw, 8).ok());
  EXPECT_EQ(raw, txn::MakeExclusiveLock(5));
  EXPECT_EQ(txn::LockOwnerId(raw), 0u);

  // Even far in the future, A cannot reclaim an owner-less word.
  rt::SimWait(SimClock::Now() + 1'000'000);
  txn::RdmaSpinLock lock_a(a_.get());
  EXPECT_TRUE(lock_a.TryAcquire(word, 6).IsBusy());
  EXPECT_FALSE(txn::MaybeReclaimOrphanLock(a_.get(), word, raw));
}

}  // namespace
}  // namespace dsmdb
