#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.h"
#include "check/history.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "core/table.h"
#include "dsm/cluster.h"
#include "dsm/dsm_client.h"
#include "rt/pct_policy.h"
#include "rt/scheduler.h"
#include "txn/cc_protocol.h"
#include "txn/data_accessor.h"

namespace dsmdb::check {
namespace {

// Runs in every configuration: the management surface must be callable
// whether or not the instrumentation was compiled in.
TEST(HistorySurfaceTest, SafeInAllBuilds) {
  History::Reset();
  EXPECT_FALSE(History::Enabled());
  History::SetEnabled(true);
  if (!History::Compiled()) {
    EXPECT_FALSE(History::Enabled());
  }
  History::SetEnabled(false);
  History::Analysis a =
      History::Analyze(History::IsolationLevel::kStrictSerializable);
  EXPECT_TRUE(a.Clean());
  EXPECT_EQ(a.txns_committed, 0u);
}

// The PCT policy itself has no check-build dependency: same seed, same
// task set => byte-identical schedule (and so identical simulated time).
TEST(PctPolicyTest, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    SimClock::Reset();
    rt::PctPolicy policy({seed, /*change_points=*/3, /*steps_estimate=*/64});
    rt::Scheduler sched;
    sched.SetPolicy(&policy);
    std::vector<int> order;
    sched.Run([&] {
      for (int i = 0; i < 4; i++) {
        sched.Spawn([&, i] {
          for (int step = 0; step < 8; step++) {
            rt::SimWait(SimClock::Now() + 100);
            order.push_back(i);
          }
        });
      }
    });
    order.push_back(static_cast<int>(sched.FinalSimNs()));
    return order;
  };
  const std::vector<int> a = run(7);
  const std::vector<int> b = run(7);
  EXPECT_EQ(a, b);
  // All 4 tasks x 8 steps completed regardless of the schedule chosen.
  EXPECT_EQ(a.size(), 4u * 8u + 1u);
}

TEST(PctPolicyTest, AllTasksCompleteUnderAdversarialPriorities) {
  for (uint64_t seed = 1; seed <= 16; seed++) {
    SimClock::Reset();
    rt::PctPolicy policy({seed, 5, 32});
    rt::Scheduler sched;
    sched.SetPolicy(&policy);
    uint32_t done = 0;
    sched.Run([&] {
      for (int i = 0; i < 6; i++) {
        sched.Spawn([&] {
          rt::SimWait(SimClock::Now() + 50);
          rt::SimWait(SimClock::Now() + 50);
          done++;
        });
      }
    });
    EXPECT_EQ(done, 6u) << "seed " << seed;
  }
}

/// Everything below feeds the oracle synthetic or real histories, so it
/// needs the check build.
class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!History::Compiled()) {
      GTEST_SKIP() << "built without DSMDB_CHECK=ON";
    }
    Checker::SetAbortOnReport(false);
    History::Reset();
    History::SetEnabled(true);
  }

  void TearDown() override {
    if (!History::Compiled()) return;
    History::SetEnabled(false);
    History::Reset();
    (void)Checker::TakeReports();
    Checker::Reset();
    Checker::SetAbortOnReport(true);
  }

  /// Runs `fn` as one synthetic transaction on its own thread (the hooks
  /// key the current txn per thread). Serialized: returns after join.
  static void Txn(const std::function<void()>& fn) {
    std::thread t([&] {
      SimClock::Reset();
      fn();
    });
    t.join();
  }

  static History::Analysis Strict() {
    return History::Analyze(History::IsolationLevel::kStrictSerializable);
  }
  static History::Analysis Si() {
    return History::Analyze(History::IsolationLevel::kSnapshotIsolation);
  }
};

constexpr uint64_t kRecX = 0x1000;
constexpr uint64_t kRecY = 0x2000;

TEST_F(OracleTest, SerialRmwChainIsClean) {
  for (int i = 0; i < 3; i++) {
    Txn([] {
      HistTxnBegin("test", 1);
      HistRead(kRecX, kVersionTagAuto);
      HistInstall(kRecX, kVersionTagAuto);
      HistTxnCommit();
    });
  }
  const History::Analysis a = Strict();
  EXPECT_TRUE(a.Clean()) << a.anomalies[0].message;
  EXPECT_EQ(a.txns_committed, 3u);
  EXPECT_EQ(a.versions_installed, 3u);
  EXPECT_EQ(a.reads_resolved, 3u);
}

TEST_F(OracleTest, AnalyzeIsRepeatable) {
  Txn([] {
    HistTxnBegin("test", 1);
    HistInstall(kRecX, kVersionTagAuto);
    HistTxnCommit();
  });
  const History::Analysis a = Strict();
  const History::Analysis b = Strict();
  EXPECT_EQ(a.txns_committed, b.txns_committed);
  EXPECT_EQ(a.versions_installed, b.versions_installed);
  EXPECT_EQ(a.anomalies.size(), b.anomalies.size());
}

TEST_F(OracleTest, LostUpdateDetected) {
  // T1 reads version 0 of x, then T2's full RMW slips in between T1's
  // read and install: T1's install (version 2) skips T2's (version 1).
  std::binary_semaphore t1_read{0}, t2_done{0};
  std::thread t1([&] {
    SimClock::Reset();
    HistTxnBegin("broken-2pl", 1);
    HistRead(kRecX, kVersionTagAuto);  // resolves to version 0
    t1_read.release();
    t2_done.acquire();
    HistInstall(kRecX, kVersionTagAuto);  // version 2: skipped T2's
    HistTxnCommit();
  });
  t1_read.acquire();
  Txn([] {
    HistTxnBegin("victim", 2);
    HistRead(kRecX, kVersionTagAuto);
    HistInstall(kRecX, kVersionTagAuto);  // version 1
    HistTxnCommit();
  });
  t2_done.release();
  t1.join();

  const History::Analysis a = Strict();
  ASSERT_FALSE(a.Clean());
  bool lost_update = false;
  for (const Anomaly& an : a.anomalies) {
    if (an.kind == AnomalyKind::kLostUpdate) {
      lost_update = true;
      // Both the updater and the overwritten victim are attributed.
      EXPECT_GE(an.txns.size(), 2u);
      EXPECT_NE(an.message.find("lost update"), std::string::npos);
    }
  }
  EXPECT_TRUE(lost_update);
}

TEST_F(OracleTest, WriteSkewExpectedUnderSiAnomalousUnderStrict) {
  // The textbook skew: both read {x,y} at version 0, then write disjoint
  // records. Serializable protocols must refuse one of them; SI commits
  // both and the oracle classifies the rw/rw cycle as expected-by-design.
  std::binary_semaphore t1_read{0}, t2_read{0};
  std::thread t1([&] {
    SimClock::Reset();
    HistTxnBegin("skew", 1);
    HistRead(kRecX, 0);
    HistRead(kRecY, 0);
    t1_read.release();
    t2_read.acquire();
    HistInstall(kRecX, 101);
    HistTxnCommit();
  });
  t1_read.acquire();
  std::thread t2([&] {
    SimClock::Reset();
    HistTxnBegin("skew", 2);
    HistRead(kRecX, 0);
    HistRead(kRecY, 0);
    t2_read.release();
    HistInstall(kRecY, 102);
    HistTxnCommit();
  });
  t1.join();
  t2.join();

  const History::Analysis si = Si();
  EXPECT_TRUE(si.Clean()) << si.anomalies[0].message;
  EXPECT_EQ(si.write_skew_cycles, 1u);

  const History::Analysis strict = Strict();
  ASSERT_FALSE(strict.Clean());
  EXPECT_EQ(strict.anomalies[0].kind, AnomalyKind::kCycle);
  EXPECT_EQ(strict.write_skew_cycles, 0u);
}

TEST_F(OracleTest, FracturedReadDetected) {
  Txn([] {
    HistTxnBegin("writer", 1);
    HistInstall(kRecX, 5);
    HistTxnCommit();
  });
  Txn([] {
    HistTxnBegin("reader", 2);
    HistRead(kRecX, 99);  // matches no installed tag
    HistTxnCommit();
  });
  const History::Analysis a = Strict();
  ASSERT_FALSE(a.Clean());
  EXPECT_EQ(a.anomalies[0].kind, AnomalyKind::kFracturedRead);
  EXPECT_NE(a.anomalies[0].message.find("fractured read"),
            std::string::npos);
}

TEST_F(OracleTest, AbortedReadsCarryNoClaim) {
  Txn([] {
    HistTxnBegin("aborter", 1);
    HistRead(kRecX, 99);  // unresolved, but the txn aborts
    HistTxnAbort();
  });
  const History::Analysis a = Strict();
  EXPECT_TRUE(a.Clean());
  EXPECT_EQ(a.txns_aborted, 1u);
}

TEST_F(OracleTest, InDoubtInstallerMasksDownstreamAnomalies) {
  // T-indoubt installs version 1 then dies mid-commit (abort after
  // install). T1's RMW then skips that version: under faults this is not
  // a protocol bug — the oracle must count it as masked, not anomalous.
  std::binary_semaphore t1_read{0}, indoubt_done{0};
  std::thread t1([&] {
    SimClock::Reset();
    HistTxnBegin("rmw", 1);
    HistRead(kRecX, kVersionTagAuto);  // version 0
    t1_read.release();
    indoubt_done.acquire();
    HistInstall(kRecX, kVersionTagAuto);  // version 2, skipping in-doubt v1
    HistTxnCommit();
  });
  t1_read.acquire();
  Txn([] {
    HistTxnBegin("doomed", 2);
    HistInstall(kRecX, kVersionTagAuto);  // version 1
    HistTxnAbort();                       // installs recorded -> in-doubt
  });
  indoubt_done.release();
  t1.join();

  const History::Analysis a = Strict();
  EXPECT_TRUE(a.Clean()) << a.anomalies[0].message;
  EXPECT_EQ(a.txns_indoubt, 1u);
  EXPECT_GE(a.masked_by_indoubt, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: real protocols, PCT-explored schedules, oracle verdicts. The
// full sweep lives in check_explore (scripts/check_matrix.sh `explore`);
// this is the fast regression net.
// ---------------------------------------------------------------------------

class OracleProtocolTest : public OracleTest {
 protected:
  static constexpr uint32_t kValueSize = 16;
  static constexpr uint64_t kKeys = 4;

  static std::string V(uint64_t x) {
    std::string v(kValueSize, '\0');
    EncodeFixed64(v.data(), x);
    EncodeFixed64(v.data() + 8, x);
    return v;
  }

  /// One PCT-scheduled run in a fresh world; returns the oracle analysis.
  History::Analysis RunSchedule(const txn::CcOptions& cc,
                                History::IsolationLevel level,
                                uint64_t seed) {
    SimClock::Reset();
    dsm::ClusterOptions copts;
    copts.num_memory_nodes = 2;
    copts.memory_node.capacity_bytes = 16 << 20;
    dsm::Cluster cluster(copts);
    dsm::DsmClient client(&cluster, cluster.AddComputeNode("cn0"));
    txn::DirectAccessor accessor(&client);
    txn::TimestampOracle oracle(&client, txn::OracleMode::kRdmaFaa,
                                txn::TimestampOracle::DefaultCounter());
    core::Table table =
        *core::Table::Create(&client, 0, {kValueSize, kKeys});
    txn::NoopLogSink sink;
    std::unique_ptr<txn::CcManager> mgr =
        txn::MakeCcManager(cc, &client, &accessor, &oracle, &sink);

    History::Reset();
    History::SetEnabled(true);
    for (uint64_t k = 0; k < kKeys; k++) {
      auto txn = std::move(*mgr->Begin());
      (void)txn->Write(table.RefFor(k), V(1'000));
      (void)txn->Commit();
    }

    rt::PctPolicy policy({seed, /*change_points=*/3, /*steps_estimate=*/400});
    rt::Scheduler sched;
    sched.SetPolicy(&policy);
    sched.Run([&] {
      for (uint64_t t = 0; t < 3; t++) {
        sched.Spawn([&, t] {
          Random64 rng(seed ^ (t + 1) * 0x9E3779B97F4A7C15ULL);
          for (int i = 0; i < 3; i++) {
            const uint64_t k1 = rng.Uniform(kKeys);
            uint64_t k2 = rng.Uniform(kKeys);
            if (k2 == k1) k2 = (k2 + 1) % kKeys;
            for (int attempt = 0; attempt < 50; attempt++) {
              auto txn = std::move(*mgr->Begin());
              std::string a, b;
              if (!txn->Read(table.RefFor(k1), &a).ok()) continue;
              if (!txn->Read(table.RefFor(k2), &b).ok()) continue;
              const uint64_t va = DecodeFixed64(a.data());
              if (!txn->Write(table.RefFor(k1), V(va + 1)).ok()) continue;
              if (txn->Commit().ok()) break;
            }
          }
        });
      }
    });
    SimClock::AdvanceTo(sched.FinalSimNs());
    History::SetEnabled(false);
    return History::Analyze(level);
  }

  /// Sweeps seeds until an anomaly shows up; 0 = never.
  uint64_t FirstAnomalyWithin(const txn::CcOptions& cc,
                              History::IsolationLevel level,
                              uint64_t max_schedules) {
    for (uint64_t s = 1; s <= max_schedules; s++) {
      if (!RunSchedule(cc, level, s).Clean()) return s;
    }
    return 0;
  }
};

TEST_F(OracleProtocolTest, StockProtocolsCleanOverPctSchedules) {
  struct Case {
    const char* name;
    txn::CcProtocolKind kind;
    txn::TwoPlLockMode mode;
    History::IsolationLevel level;
  };
  const Case cases[] = {
      {"2pl-nowait", txn::CcProtocolKind::kTwoPlNoWait,
       txn::TwoPlLockMode::kExclusiveOnly,
       History::IsolationLevel::kStrictSerializable},
      {"2pl-nowait-se", txn::CcProtocolKind::kTwoPlNoWait,
       txn::TwoPlLockMode::kSharedExclusive,
       History::IsolationLevel::kStrictSerializable},
      {"2pl-waitdie", txn::CcProtocolKind::kTwoPlWaitDie,
       txn::TwoPlLockMode::kExclusiveOnly,
       History::IsolationLevel::kStrictSerializable},
      {"occ", txn::CcProtocolKind::kOcc,
       txn::TwoPlLockMode::kExclusiveOnly,
       History::IsolationLevel::kStrictSerializable},
      {"tso", txn::CcProtocolKind::kTso,
       txn::TwoPlLockMode::kExclusiveOnly,
       History::IsolationLevel::kStrictSerializable},
      {"mvcc", txn::CcProtocolKind::kMvcc,
       txn::TwoPlLockMode::kExclusiveOnly,
       History::IsolationLevel::kSnapshotIsolation},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    txn::CcOptions cc;
    cc.protocol = c.kind;
    cc.lock_mode = c.mode;
    for (uint64_t seed = 1; seed <= 8; seed++) {
      const History::Analysis a = RunSchedule(cc, c.level, seed);
      EXPECT_TRUE(a.Clean())
          << "seed " << seed << ":\n"
          << (a.anomalies.empty() ? "" : a.anomalies[0].message);
      EXPECT_GT(a.txns_committed, 0u);
    }
  }
}

#if defined(DSMDB_CHECK_ENABLED)

TEST_F(OracleProtocolTest, BrokenTwoPlEarlyReadReleaseIsFlagged) {
  txn::CcOptions cc;
  cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  cc.debug_break.release_read_locks_early = true;
  const uint64_t at = FirstAnomalyWithin(
      cc, History::IsolationLevel::kStrictSerializable, 30);
  EXPECT_NE(at, 0u) << "non-two-phase 2PL stayed clean over 30 schedules";
}

TEST_F(OracleProtocolTest, BrokenOccSkippedRecheckIsFlagged) {
  txn::CcOptions cc;
  cc.protocol = txn::CcProtocolKind::kOcc;
  cc.debug_break.skip_version_recheck = true;
  const uint64_t at = FirstAnomalyWithin(
      cc, History::IsolationLevel::kStrictSerializable, 30);
  EXPECT_NE(at, 0u) << "validation-free OCC stayed clean over 30 schedules";
}

#endif  // DSMDB_CHECK_ENABLED

}  // namespace
}  // namespace dsmdb::check
