#include <gtest/gtest.h>

#include <atomic>

#include "common/coding.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "core/dsmdb.h"

namespace dsmdb::core {
namespace {

DbOptions OptionsFor(Architecture arch) {
  DbOptions opts;
  opts.architecture = arch;
  opts.cc.protocol = txn::CcProtocolKind::kTwoPlNoWait;
  opts.buffer.capacity_bytes = 256 * 4096;
  opts.buffer.charge_policy_overhead = false;
  return opts;
}

dsm::ClusterOptions SmallCluster() {
  dsm::ClusterOptions copts;
  copts.num_memory_nodes = 2;
  copts.memory_node.capacity_bytes = 64 << 20;
  return copts;
}

class ArchitectureTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(ArchitectureTest, OneShotReadWriteRoundTrip) {
  DsmDb db(SmallCluster(), OptionsFor(GetParam()));
  ComputeNode* cn0 = db.AddComputeNode();
  ComputeNode* cn1 = db.AddComputeNode();
  const Table* t = *db.CreateTable("kv", {64, 1'000});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  std::string value(64, '\0');
  EncodeFixed64(value.data(), 777);
  Result<TxnResult> w =
      cn0->ExecuteOneShot(*t, {TxnOp::Write(42, value)});
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->committed);

  // The other compute node must see it (multi-master reads).
  Result<TxnResult> r = cn1->ExecuteOneShot(*t, {TxnOp::Read(42)});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->committed);
  EXPECT_EQ(DecodeFixed64(r->reads[0].data()), 777u);
}

TEST_P(ArchitectureTest, AddOpsAreAtomicRmw) {
  DsmDb db(SmallCluster(), OptionsFor(GetParam()));
  ComputeNode* cn = db.AddComputeNode();
  const Table* t = *db.CreateTable("acct", {64, 100});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  for (int i = 0; i < 10; i++) {
    Result<TxnResult> r = cn->ExecuteOneShot(*t, {TxnOp::Add(5, 7)});
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->committed);
  }
  Result<TxnResult> r = cn->ExecuteOneShot(*t, {TxnOp::Read(5)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(static_cast<int64_t>(DecodeFixed64(r->reads[0].data())), 70);
}

TEST_P(ArchitectureTest, ConcurrentTransfersConserveMoneyAcrossNodes) {
  DsmDb db(SmallCluster(), OptionsFor(GetParam()));
  std::vector<ComputeNode*> nodes = {db.AddComputeNode(),
                                     db.AddComputeNode(),
                                     db.AddComputeNode()};
  const Table* t = *db.CreateTable("bank", {64, 90});
  ASSERT_TRUE(db.FinishSetup().ok());

  // Seed balances.
  for (uint64_t k = 0; k < 90; k++) {
    std::string v(64, '\0');
    EncodeFixed64(v.data(), 1'000);
    Result<TxnResult> r =
        nodes[0]->ExecuteOneShot(*t, {TxnOp::Write(k, v)});
    ASSERT_TRUE(r.ok() && r->committed);
  }

  std::atomic<uint64_t> committed{0};
  ParallelFor(6, [&](size_t w) {
    SimClock::Reset();
    ComputeNode* cn = nodes[w % nodes.size()];
    Random64 rng(w + 10);
    for (int i = 0; i < 50; i++) {
      const uint64_t a = rng.Uniform(90);
      uint64_t b = rng.Uniform(90);
      if (b == a) b = (b + 1) % 90;
      const int64_t amt = static_cast<int64_t>(rng.Uniform(50)) + 1;
      const uint64_t lo = std::min(a, b), hi = std::max(a, b);
      for (int attempt = 0; attempt < 10'000; attempt++) {
        Result<TxnResult> r = cn->ExecuteOneShot(
            *t, {TxnOp::Add(lo, lo == a ? -amt : amt),
                 TxnOp::Add(hi, hi == a ? -amt : amt)});
        ASSERT_TRUE(r.ok()) << r.status();
        if (r->committed) {
          committed++;
          break;
        }
      }
    }
  });
  EXPECT_EQ(committed.load(), 300u);

  int64_t total = 0;
  for (uint64_t k = 0; k < 90; k++) {
    Result<TxnResult> r = nodes[0]->ExecuteOneShot(*t, {TxnOp::Read(k)});
    ASSERT_TRUE(r.ok() && r->committed);
    total += static_cast<int64_t>(DecodeFixed64(r->reads[0].data()));
  }
  EXPECT_EQ(total, 90 * 1'000);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ArchitectureTest,
    ::testing::Values(Architecture::kNoCacheNoSharding,
                      Architecture::kCacheNoSharding,
                      Architecture::kCacheSharding),
    [](const ::testing::TestParamInfo<Architecture>& info) {
      switch (info.param) {
        case Architecture::kNoCacheNoSharding:
          return "NoCacheNoSharding";
        case Architecture::kCacheNoSharding:
          return "CacheNoSharding";
        case Architecture::kCacheSharding:
          return "CacheSharding";
      }
      return "Unknown";
    });

TEST(ShardManagerTest, EvenPartition) {
  ShardManager shards(100, 4);
  EXPECT_EQ(shards.OwnerOf(0), 0u);
  EXPECT_EQ(shards.OwnerOf(24), 0u);
  EXPECT_EQ(shards.OwnerOf(25), 1u);
  EXPECT_EQ(shards.OwnerOf(99), 3u);
}

TEST(ShardManagerTest, UpdateRangesCountsMovedKeys) {
  ShardManager shards(100, 2);  // [0,50)->0, [50,100)->1
  const uint64_t moved = shards.UpdateRanges({
      {0, 25, 0},
      {25, 100, 1},
  });
  EXPECT_EQ(moved, 25u);  // keys [25,50) changed owner 0 -> 1
  EXPECT_EQ(shards.OwnerOf(30), 1u);
  EXPECT_EQ(shards.Version(), 2u);
}

TEST(DsmDbShardingTest, RoutingCountsMatchOwnership) {
  DsmDb db(SmallCluster(), OptionsFor(Architecture::kCacheSharding));
  ComputeNode* cn0 = db.AddComputeNode();
  ComputeNode* cn1 = db.AddComputeNode();
  const Table* t = *db.CreateTable("kv", {64, 100});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  // Key 10 is owned by cn0 ([0,50)), key 90 by cn1.
  std::string v(64, '\0');
  ASSERT_TRUE(cn0->ExecuteOneShot(*t, {TxnOp::Write(10, v)})->committed);
  EXPECT_GE(cn0->node_stats().local_txns.load(), 1u);

  ASSERT_TRUE(cn0->ExecuteOneShot(*t, {TxnOp::Write(90, v)})->committed);
  EXPECT_GE(cn0->node_stats().delegated_txns.load(), 1u);

  ASSERT_TRUE(cn0->ExecuteOneShot(
                     *t, {TxnOp::Write(10, v), TxnOp::Write(90, v)})
                  ->committed);
  EXPECT_GE(cn0->node_stats().two_pc_txns.load(), 1u);
  (void)cn1;
}

TEST(DsmDbShardingTest, CrossShardTransferConservesMoney) {
  DsmDb db(SmallCluster(), OptionsFor(Architecture::kCacheSharding));
  ComputeNode* cn0 = db.AddComputeNode();
  db.AddComputeNode();
  const Table* t = *db.CreateTable("bank", {64, 100});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  std::string v(64, '\0');
  EncodeFixed64(v.data(), 500);
  ASSERT_TRUE(cn0->ExecuteOneShot(*t, {TxnOp::Write(10, v)})->committed);
  ASSERT_TRUE(cn0->ExecuteOneShot(*t, {TxnOp::Write(90, v)})->committed);

  // 10 -> 90 is a cross-shard transfer through 2PC.
  Result<TxnResult> r = cn0->ExecuteOneShot(
      *t, {TxnOp::Add(10, -123), TxnOp::Add(90, 123)});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->committed);

  Result<TxnResult> r10 = cn0->ExecuteOneShot(*t, {TxnOp::Read(10)});
  Result<TxnResult> r90 = cn0->ExecuteOneShot(*t, {TxnOp::Read(90)});
  EXPECT_EQ(DecodeFixed64(r10->reads[0].data()), 377u);
  EXPECT_EQ(DecodeFixed64(r90->reads[0].data()), 623u);
}

TEST(DsmDbShardingTest, ReshardingIsMetadataOnlyAndKeepsData) {
  DsmDb db(SmallCluster(), OptionsFor(Architecture::kCacheSharding));
  ComputeNode* cn0 = db.AddComputeNode();
  ComputeNode* cn1 = db.AddComputeNode();
  const Table* t = *db.CreateTable("kv", {64, 100});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  std::string v(64, '\0');
  EncodeFixed64(v.data(), 31415);
  ASSERT_TRUE(cn0->ExecuteOneShot(*t, {TxnOp::Write(10, v)})->committed);

  // Move everything to cn1: no data movement, just the map.
  ShardManager* shards = db.shards("kv");
  ASSERT_NE(shards, nullptr);
  const uint64_t moved = shards->UpdateRanges({{0, 100, 1}});
  EXPECT_EQ(moved, 50u);

  // cn0's transaction on key 10 is now delegated to cn1; data intact.
  Result<TxnResult> r = cn0->ExecuteOneShot(*t, {TxnOp::Read(10)});
  ASSERT_TRUE(r.ok() && r->committed);
  EXPECT_EQ(DecodeFixed64(r->reads[0].data()), 31415u);
  EXPECT_GE(cn0->node_stats().delegated_txns.load(), 1u);
  EXPECT_GE(cn1->node_stats().local_txns.load(), 1u);
}

TEST(DsmDbShardingTest, ReshardDropsStaleCachesOnDelegatedPath) {
  // Regression test: shard boundaries are key-granular but caches are
  // page-granular, so a page can hold records of two owners. Before the
  // reshard, cn1 legitimately caches a page that also holds cn0's key 48
  // (keys 48 and 50 are adjacent slots on memory node 0's stripe). cn0
  // then updates key 48. After resharding everything to cn1, reads of
  // key 48 are delegated to cn1 — which must NOT serve its stale page.
  DsmDb db(SmallCluster(), OptionsFor(Architecture::kCacheSharding));
  ComputeNode* cn0 = db.AddComputeNode();
  ComputeNode* cn1 = db.AddComputeNode();
  const Table* t = *db.CreateTable("kv", {64, 100});
  ASSERT_TRUE(db.FinishSetup().ok());
  SimClock::Reset();

  std::string v(64, '\0');
  EncodeFixed64(v.data(), 1);
  ASSERT_TRUE(cn0->ExecuteOneShot(*t, {TxnOp::Write(48, v)})->committed);
  // cn1 caches the shared page by reading its own key 50.
  ASSERT_TRUE(cn1->ExecuteOneShot(*t, {TxnOp::Read(50)})->committed);
  // cn0 updates key 48; cn1's cached copy of that page is now stale.
  EncodeFixed64(v.data(), 31337);
  ASSERT_TRUE(cn0->ExecuteOneShot(*t, {TxnOp::Write(48, v)})->committed);

  ASSERT_NE(db.shards("kv"), nullptr);
  db.shards("kv")->UpdateRanges({{0, 100, 1}});

  Result<TxnResult> r = cn0->ExecuteOneShot(*t, {TxnOp::Read(48)});
  ASSERT_TRUE(r.ok() && r->committed);
  EXPECT_EQ(DecodeFixed64(r->reads[0].data()), 31337u);
}

TEST(TableTest, StripesAcrossMemoryNodes) {
  DsmDb db(SmallCluster(), OptionsFor(Architecture::kNoCacheNoSharding));
  const Table* t = *db.CreateTable("kv", {32, 10});
  EXPECT_EQ(t->RefFor(0).addr.node, 0);
  EXPECT_EQ(t->RefFor(1).addr.node, 1);
  EXPECT_EQ(t->RefFor(2).addr.node, 0);
  EXPECT_EQ(t->HomeNode(3), 1);
  EXPECT_EQ(t->record_stride(), txn::RecordStride(32));
  EXPECT_EQ(t->KeysPerStripe(0), 5u);
}

TEST(TableTest, DistinctRecordsDoNotOverlap) {
  DsmDb db(SmallCluster(), OptionsFor(Architecture::kNoCacheNoSharding));
  const Table* t = *db.CreateTable("kv", {48, 1'000});
  // Records on the same stripe are exactly stride apart.
  const auto r0 = t->RefFor(0);
  const auto r2 = t->RefFor(2);
  EXPECT_EQ(r2.addr.offset - r0.addr.offset, t->record_stride());
}

TEST(DsmDbTest, DuplicateTableRejected) {
  DsmDb db(SmallCluster(), OptionsFor(Architecture::kNoCacheNoSharding));
  ASSERT_TRUE(db.CreateTable("t", {64, 10}).ok());
  EXPECT_TRUE(db.CreateTable("t", {64, 10}).status().IsAlreadyExists());
  EXPECT_NE(db.GetTable("t"), nullptr);
  EXPECT_EQ(db.GetTable("missing"), nullptr);
}

TEST(DsmDbTest, DurabilityModesWireUp) {
  DbOptions wal_opts = OptionsFor(Architecture::kNoCacheNoSharding);
  wal_opts.durability = DurabilityMode::kCloudWal;
  DsmDb db1(SmallCluster(), wal_opts);
  ComputeNode* cn1 = db1.AddComputeNode();
  EXPECT_NE(cn1->wal(), nullptr);
  EXPECT_EQ(cn1->log_sink().name(), "cloud-wal");

  DbOptions repl_opts = OptionsFor(Architecture::kNoCacheNoSharding);
  repl_opts.durability = DurabilityMode::kMemReplication;
  DsmDb db2(SmallCluster(), repl_opts);
  ComputeNode* cn2 = db2.AddComputeNode();
  EXPECT_NE(cn2->replicated_log(), nullptr);
  EXPECT_EQ(cn2->log_sink().name(), "mem-replicated");
}

}  // namespace
}  // namespace dsmdb::core
