#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "rdma/async_engine.h"
#include "rdma/fabric.h"
#include "rdma/network_model.h"
#include "rdma/nic.h"
#include "rdma/virtual_cpu.h"

namespace dsmdb::rdma {
namespace {

class FabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimClock::Reset();
    mem_ = fabric_.AddNode("mem0", 2, 4.0);
    cpu_ = fabric_.AddNode("cn0", 16, 1.0);
    region_.resize(1 << 20);
    rkey_ = *fabric_.RegisterMemory(mem_, region_.data(), region_.size());
  }

  RemotePtr At(uint64_t offset) const { return RemotePtr{mem_, rkey_, offset}; }

  Fabric fabric_;
  NodeId mem_ = 0, cpu_ = 0;
  std::vector<char> region_;
  uint32_t rkey_ = 0;
};

TEST_F(FabricTest, WriteThenReadRoundTrip) {
  const char msg[] = "disaggregated";
  ASSERT_TRUE(fabric_.Write(cpu_, At(128), msg, sizeof(msg)).ok());
  char out[sizeof(msg)] = {};
  ASSERT_TRUE(fabric_.Read(cpu_, At(128), out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);
  // One-sided semantics: the bytes really live in the target's region.
  EXPECT_EQ(std::memcmp(region_.data() + 128, msg, sizeof(msg)), 0);
}

TEST_F(FabricTest, ReadAdvancesSimClockPerModel) {
  SimClock::Reset();
  char buf[4096];
  ASSERT_TRUE(fabric_.Read(cpu_, At(0), buf, sizeof(buf)).ok());
  EXPECT_EQ(SimClock::Now(), fabric_.model().OneSidedNs(4096));
}

TEST_F(FabricTest, OutOfBoundsRejected) {
  char buf[16];
  EXPECT_TRUE(fabric_.Read(cpu_, At(region_.size() - 8), buf, 16)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      fabric_.Write(cpu_, RemotePtr{mem_, 99, 0}, buf, 8).IsInvalidArgument());
}

TEST_F(FabricTest, CasReturnsPreviousValue) {
  uint64_t v = 55;
  ASSERT_TRUE(fabric_.Write(cpu_, At(64), &v, 8).ok());
  Result<uint64_t> r1 = fabric_.CompareAndSwap(cpu_, At(64), 55, 99);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 55u);  // success: returns old value
  Result<uint64_t> r2 = fabric_.CompareAndSwap(cpu_, At(64), 55, 123);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, 99u);  // failure: returns current value, no change
  uint64_t now = 0;
  ASSERT_TRUE(fabric_.Read(cpu_, At(64), &now, 8).ok());
  EXPECT_EQ(now, 99u);
}

TEST_F(FabricTest, CasRequiresAlignment) {
  EXPECT_TRUE(
      fabric_.CompareAndSwap(cpu_, At(3), 0, 1).status().IsInvalidArgument());
  EXPECT_TRUE(
      fabric_.FetchAndAdd(cpu_, At(12), 1).status().IsInvalidArgument());
}

TEST_F(FabricTest, FaaIsAtomicUnderContention) {
  ParallelFor(8, [&](size_t) {
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(fabric_.FetchAndAdd(cpu_, At(256), 1).ok());
    }
  });
  uint64_t total = 0;
  ASSERT_TRUE(fabric_.Read(cpu_, At(256), &total, 8).ok());
  EXPECT_EQ(total, 8000u);
}

TEST_F(FabricTest, CasContentionElectsExactlyOneWinner) {
  std::atomic<int> winners{0};
  ParallelFor(8, [&](size_t idx) {
    Result<uint64_t> r =
        fabric_.CompareAndSwap(cpu_, At(512), 0, idx + 1);
    ASSERT_TRUE(r.ok());
    if (*r == 0) winners++;
  });
  EXPECT_EQ(winners.load(), 1);
}

TEST_F(FabricTest, BatchReadsOneRttForManyOps) {
  // Populate three scattered words.
  for (uint64_t i = 0; i < 3; i++) {
    const uint64_t v = 100 + i;
    ASSERT_TRUE(fabric_.Write(cpu_, At(1024 + i * 4096), &v, 8).ok());
  }
  SimClock::Reset();
  uint64_t out[3];
  std::vector<BatchOp> ops;
  for (uint64_t i = 0; i < 3; i++) {
    ops.push_back(BatchOp{At(1024 + i * 4096), &out[i], 8});
  }
  ASSERT_TRUE(fabric_.ReadBatch(cpu_, ops).ok());
  EXPECT_EQ(out[0], 100u);
  EXPECT_EQ(out[2], 102u);
  // One batch must be cheaper than three independent reads.
  const uint64_t batch_ns = SimClock::Now();
  EXPECT_LT(batch_ns, 3 * fabric_.model().OneSidedNs(8));
  EXPECT_EQ(batch_ns, fabric_.model().BatchNs(3, 24));
}

TEST_F(FabricTest, WriteBatchExecutesInOrder) {
  // Doorbell-batched writes execute in posting order (the property the
  // B+tree's seqlock publish protocol relies on).
  uint64_t a = 1, b = 2, c = 3;
  std::vector<BatchOp> ops = {
      BatchOp{At(0), &a, 8}, BatchOp{At(8), &b, 8}, BatchOp{At(0), &c, 8}};
  ASSERT_TRUE(fabric_.WriteBatch(cpu_, ops).ok());
  uint64_t out0 = 0, out8 = 0;
  ASSERT_TRUE(fabric_.Read(cpu_, At(0), &out0, 8).ok());
  ASSERT_TRUE(fabric_.Read(cpu_, At(8), &out8, 8).ok());
  EXPECT_EQ(out0, 3u);  // later op in the batch wins
  EXPECT_EQ(out8, 2u);
  EXPECT_EQ(fabric_.stats(cpu_).Snapshot().batches, 1u);
}

TEST_F(FabricTest, RpcRunsHandlerAndChargesServerCpu) {
  fabric_.RegisterRpcHandler(
      mem_, 7, [](std::string_view req, std::string* resp) -> uint64_t {
        *resp = std::string(req) + "-pong";
        return 1'000;  // 1 usec of (wimpy) server CPU
      });
  SimClock::Reset();
  std::string resp;
  ASSERT_TRUE(fabric_.Call(cpu_, mem_, 7, "ping", &resp).ok());
  EXPECT_EQ(resp, "ping-pong");
  // Total >= network two-sided share + scaled handler cost (4x slowdown).
  EXPECT_GE(SimClock::Now(), 4'000u);
}

TEST_F(FabricTest, RpcToUnknownServiceFails) {
  std::string resp;
  EXPECT_TRUE(fabric_.Call(cpu_, mem_, 42, "x", &resp).IsNotFound());
}

TEST_F(FabricTest, VirtualCpuQueuesConcurrentWork) {
  // Saturating one wimpy 2-core node must produce queueing delay.
  fabric_.RegisterRpcHandler(
      mem_, 1, [](std::string_view, std::string*) -> uint64_t {
        return 10'000;
      });
  SimClock::Reset();
  std::string resp;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(fabric_.Call(cpu_, mem_, 1, "", &resp).ok());
  }
  // 8 tasks x 10us x 4 slowdown / 2 cores = 160us of pure service time.
  EXPECT_GE(SimClock::Now(), 160'000u);
}

TEST_F(FabricTest, CrashMakesVerbsUnavailable) {
  fabric_.CrashNode(mem_);
  char buf[8];
  EXPECT_TRUE(fabric_.Read(cpu_, At(0), buf, 8).IsUnavailable());
  EXPECT_TRUE(fabric_.Write(cpu_, At(0), buf, 8).IsUnavailable());
  EXPECT_TRUE(
      fabric_.CompareAndSwap(cpu_, At(0), 0, 1).status().IsUnavailable());
  std::string resp;
  EXPECT_TRUE(fabric_.Call(cpu_, mem_, 0, "", &resp).IsUnavailable());
  EXPECT_FALSE(fabric_.IsAlive(mem_));
}

TEST_F(FabricTest, RecoveryBumpsIncarnationAndNeedsReregistration) {
  const uint64_t inc0 = fabric_.Incarnation(mem_);
  fabric_.CrashNode(mem_);
  fabric_.RecoverNode(mem_);
  EXPECT_TRUE(fabric_.IsAlive(mem_));
  EXPECT_EQ(fabric_.Incarnation(mem_), inc0 + 1);
  // Old rkey is gone until memory is re-registered.
  char buf[8];
  EXPECT_TRUE(fabric_.Read(cpu_, At(0), buf, 8).IsInvalidArgument());
  ASSERT_TRUE(
      fabric_.RegisterMemory(mem_, region_.data(), region_.size()).ok());
  EXPECT_TRUE(fabric_.Read(cpu_, RemotePtr{mem_, 0, 0}, buf, 8).ok());
}

TEST_F(FabricTest, StatsCountVerbs) {
  fabric_.ResetStats();
  char buf[8] = {};
  ASSERT_TRUE(fabric_.Read(cpu_, At(0), buf, 8).ok());
  ASSERT_TRUE(fabric_.Write(cpu_, At(0), buf, 8).ok());
  ASSERT_TRUE(fabric_.FetchAndAdd(cpu_, At(8), 1).ok());
  const VerbStats::Values v = fabric_.stats(cpu_).Snapshot();
  EXPECT_EQ(v.one_sided_reads, 1u);
  EXPECT_EQ(v.one_sided_writes, 1u);
  EXPECT_EQ(v.faa_ops, 1u);
  EXPECT_EQ(v.RoundTrips(), 3u);
  const VerbStats::Values total = fabric_.TotalStats();
  EXPECT_EQ(total.RoundTrips(), 3u);
}

TEST(NetworkModelTest, CostsScaleWithSize) {
  NetworkModel m;
  EXPECT_GT(m.OneSidedNs(4096), m.OneSidedNs(8));
  EXPECT_EQ(m.OneSidedNs(0), m.post_overhead_ns + m.rtt_ns);
  // 200 Gb/s: 4 KiB wire time ~ 163 ns.
  EXPECT_NEAR(static_cast<double>(m.TransferNs(4096)), 4096 / 25.0, 1.0);
  NetworkModel slow = m.WithRttFactor(10.0);
  EXPECT_EQ(slow.rtt_ns, m.rtt_ns * 10);
}

TEST(NetworkModelTest, LocalRemoteGapIsAboutTenX) {
  // The paper's premise: RDMA narrows the hit/miss gap to ~10x.
  NetworkModel net;
  CpuModel cpu;
  const double remote = static_cast<double>(net.OneSidedNs(4096));
  const double local = static_cast<double>(cpu.LocalCopyNs(4096));
  EXPECT_GT(remote / local, 5.0);
  EXPECT_LT(remote / local, 20.0);
}

TEST(VirtualCpuTest, FluidQueueSemantics) {
  VirtualCpu cpu(2, 1.0);
  // First task at t=0 on an empty server: no backlog.
  EXPECT_EQ(cpu.Execute(0, 100), 100u);
  // Second task at t=0: 100 units already submitted, zero capacity
  // elapsed -> fluid backlog 100/2 = 50.
  EXPECT_EQ(cpu.Execute(0, 100), 150u);
  // Third: backlog (200 - 0)/2 = 100.
  EXPECT_EQ(cpu.Execute(0, 100), 200u);
}

TEST(VirtualCpuTest, UnsaturatedServerAddsNoBacklog) {
  VirtualCpu cpu(2, 1.0);
  // Work submitted slower than capacity: each task runs immediately.
  EXPECT_EQ(cpu.Execute(1'000, 100), 1'100u);
  EXPECT_EQ(cpu.Execute(2'000, 100), 2'100u);
  EXPECT_EQ(cpu.Execute(3'000, 100), 3'100u);
}

TEST(VirtualCpuTest, OrderInsensitiveForOutOfOrderArrivals) {
  // A late-clock client must not drag an early-clock client's completion
  // to its own timeline when the server is idle at the early time.
  VirtualCpu cpu(2, 1.0);
  EXPECT_EQ(cpu.Execute(1'000'000, 100), 1'000'100u);  // late client
  // Early client: only 100ns of work exists vs 2*10'000 capacity.
  EXPECT_EQ(cpu.Execute(10'000, 100), 10'100u);
}

TEST(VirtualCpuTest, SpeedFactorScalesWork) {
  VirtualCpu cpu(1, 4.0);
  EXPECT_EQ(cpu.Execute(0, 100), 400u);
}

TEST(VirtualCpuTest, LateArrivalStartsAtArrival) {
  VirtualCpu cpu(1, 1.0);
  EXPECT_EQ(cpu.Execute(1'000, 50), 1'050u);
}

// ---------------------------------------------------------------------------
// Async verb engine (CompletionQueue).
// ---------------------------------------------------------------------------

class CompletionQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimClock::Reset();
    mem_a_ = fabric_.AddNode("mem0", 2, 4.0);
    mem_b_ = fabric_.AddNode("mem1", 2, 4.0);
    cpu_ = fabric_.AddNode("cn0", 16, 1.0);
    region_a_.resize(1 << 20);
    region_b_.resize(1 << 20);
    rkey_a_ = *fabric_.RegisterMemory(mem_a_, region_a_.data(),
                                      region_a_.size());
    rkey_b_ = *fabric_.RegisterMemory(mem_b_, region_b_.data(),
                                      region_b_.size());
  }

  RemotePtr A(uint64_t off) const { return RemotePtr{mem_a_, rkey_a_, off}; }
  RemotePtr B(uint64_t off) const { return RemotePtr{mem_b_, rkey_b_, off}; }

  Fabric fabric_;
  NodeId mem_a_ = 0, mem_b_ = 0, cpu_ = 0;
  std::vector<char> region_a_, region_b_;
  uint32_t rkey_a_ = 0, rkey_b_ = 0;
};

TEST_F(CompletionQueueTest, PipelineCostsOneRttPlusPostings) {
  // n same-size posts complete at n*post + rtt + transfer — one RTT total,
  // within 1% of the acceptance closed form max(RTT) + n*post.
  const NetworkModel& m = fabric_.model();
  const size_t kOps = 16, kBytes = 64;
  std::vector<char> buf(kOps * kBytes);
  CompletionQueue cq(&fabric_, cpu_);
  for (size_t i = 0; i < kOps; i++) {
    cq.PostRead(A(i * kBytes), buf.data() + i * kBytes, kBytes);
  }
  ASSERT_TRUE(cq.WaitAll().ok());
  const uint64_t total = SimClock::Now();
  EXPECT_EQ(total,
            kOps * m.post_overhead_ns + m.rtt_ns + m.TransferNs(kBytes));
  const double closed_form =
      static_cast<double>(m.rtt_ns + kOps * m.post_overhead_ns);
  EXPECT_LT(std::abs(static_cast<double>(total) - closed_form) / closed_form,
            0.01);
  // Far cheaper than the serial alternative (n full round trips).
  EXPECT_LT(total, kOps * m.OneSidedNs(kBytes));
}

TEST_F(CompletionQueueTest, PerTargetCompletionsAreInOrder) {
  // A huge write followed by a tiny read to the SAME target: QP ordering
  // forbids the tiny op from completing before the big one.
  std::vector<char> big(256 << 10, 'x');
  char tiny[8];
  CompletionQueue cq(&fabric_, cpu_);
  const WrId w_big = cq.PostWrite(A(0), big.data(), big.size());
  const WrId w_tiny = cq.PostRead(A(0), tiny, sizeof(tiny));
  ASSERT_TRUE(cq.WaitAll().ok());
  EXPECT_GE(cq.completion_ns(w_tiny), cq.completion_ns(w_big));
}

TEST_F(CompletionQueueTest, CrossTargetOpsOverlap) {
  // The same two ops against DIFFERENT targets: the tiny read completes on
  // its own schedule, well before the big write.
  const NetworkModel& m = fabric_.model();
  std::vector<char> big(256 << 10, 'x');
  char tiny[8];
  CompletionQueue cq(&fabric_, cpu_);
  const WrId w_big = cq.PostWrite(A(0), big.data(), big.size());
  const WrId w_tiny = cq.PostRead(B(0), tiny, sizeof(tiny));
  ASSERT_TRUE(cq.WaitAll().ok());
  EXPECT_LT(cq.completion_ns(w_tiny), cq.completion_ns(w_big));
  // WaitAll lands on the max completion, not the sum of both ops.
  EXPECT_EQ(SimClock::Now(), cq.completion_ns(w_big));
  EXPECT_LT(SimClock::Now(),
            m.OneSidedNs(big.size()) + m.OneSidedNs(sizeof(tiny)));
}

TEST_F(CompletionQueueTest, DepthBoundStallsLikeAFullSendQueue) {
  // depth=1 degenerates to fully serial round trips.
  const NetworkModel& m = fabric_.model();
  const size_t kOps = 4;
  char buf[kOps * 8];
  CompletionQueue cq(&fabric_, cpu_, /*max_outstanding=*/1);
  for (size_t i = 0; i < kOps; i++) cq.PostRead(A(i * 8), buf + i * 8, 8);
  ASSERT_TRUE(cq.WaitAll().ok());
  EXPECT_EQ(SimClock::Now(), kOps * m.OneSidedNs(8));
  EXPECT_EQ(cq.max_outstanding(), 1u);
}

TEST_F(CompletionQueueTest, CasFaaDeliverPreviousValues) {
  const uint64_t init = 41;
  std::memcpy(region_a_.data() + 64, &init, 8);
  CompletionQueue cq(&fabric_, cpu_);
  const WrId faa = cq.PostFaa(A(64), 1);
  const WrId cas = cq.PostCas(A(64), 42, 77);
  ASSERT_TRUE(cq.WaitAll().ok());
  EXPECT_EQ(cq.value(faa), 41u);  // previous value
  EXPECT_EQ(cq.value(cas), 42u);  // FAA applied first (posting order)
  uint64_t now = 0;
  std::memcpy(&now, region_a_.data() + 64, 8);
  EXPECT_EQ(now, 77u);
  // Misaligned atomics fail that op only.
  CompletionQueue cq2(&fabric_, cpu_);
  const WrId bad = cq2.PostCas(A(65), 0, 1);
  const WrId good = cq2.PostFaa(A(64), 1);
  EXPECT_FALSE(cq2.WaitAll().ok());
  EXPECT_TRUE(cq2.status(bad).IsInvalidArgument());
  EXPECT_TRUE(cq2.status(good).ok());
}

TEST_F(CompletionQueueTest, CrashedTargetFailsOnlyItsOps) {
  const NetworkModel& m = fabric_.model();
  fabric_.CrashNode(mem_b_);
  char ra[8], rb[8];
  CompletionQueue cq(&fabric_, cpu_);
  const uint64_t t0 = SimClock::Now();
  const WrId ok_op = cq.PostRead(A(0), ra, sizeof(ra));
  const WrId dead_op = cq.PostRead(B(0), rb, sizeof(rb));
  const Status s = cq.WaitAll();
  EXPECT_TRUE(s.IsUnavailable());           // first error surfaces
  EXPECT_TRUE(cq.status(ok_op).ok());       // live target unaffected
  EXPECT_TRUE(cq.status(dead_op).IsUnavailable());
  // The failure is detected one RTT after issue (NIC timeout), not free.
  EXPECT_GE(cq.completion_ns(dead_op), t0 + m.rtt_ns);
}

TEST_F(CompletionQueueTest, PollAllRetiresOnlyElapsedOps) {
  char buf[8];
  CompletionQueue cq(&fabric_, cpu_);
  cq.PostRead(A(0), buf, sizeof(buf));
  EXPECT_EQ(cq.PollAll(), 0u);  // clock has not reached completion yet
  EXPECT_EQ(cq.outstanding(), 1u);
  ASSERT_TRUE(cq.WaitAll().ok());
  EXPECT_EQ(cq.outstanding(), 0u);
  cq.Reset();
  EXPECT_EQ(cq.size(), 0u);
}

}  // namespace
}  // namespace dsmdb::rdma
